//! The simulation engine: protocols, contexts and the simulator loop.
//!
//! A *protocol* is the code running on the system-management processor of a
//! site (§2): it reacts to start-up, to message deliveries and to timers, and
//! it may send messages to neighbors or to any site it knows a route to (the
//! engine forwards along the routing substrate only in the sense of charging
//! the end-to-end delay supplied by the caller — routing decisions themselves
//! belong to the protocol, as in the paper).

use crate::event::{Event, EventPayload};
use crate::faults::{FaultEvent, FaultState};
use crate::flow::FlowPlane;
use crate::queue::CalendarQueue;
use crate::stats::SimStats;
use crate::trace::{SpanId, Trace, TraceEvent, TracePayload};
use rtds_metrics::Scope;
use rtds_net::{shortest_paths, Network, SiteId};
use std::fmt::Debug;
use std::time::{Duration, Instant};

/// Behaviour of one site. `Msg` is the wire-message type of the protocol.
pub trait Protocol: Sized {
    /// Message type exchanged between sites (and injected externally).
    type Msg: Clone + Debug + PartialEq;

    /// Called once per site before any event is processed.
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>);

    /// Called when a message is delivered to this site.
    fn on_message(&mut self, from: SiteId, msg: Self::Msg, ctx: &mut Context<'_, Self::Msg>);

    /// Called when a timer set by this site fires. The default implementation
    /// ignores timers.
    fn on_timer(&mut self, _timer_id: u64, _ctx: &mut Context<'_, Self::Msg>) {}
}

/// Outgoing actions buffered during one handler invocation.
#[derive(Debug)]
enum Outgoing<M> {
    /// Send `msg` to `to`, charging `delay` time units. `None` delay means
    /// "use the direct link delay" and is an error if no direct link exists.
    Send {
        to: SiteId,
        msg: M,
        delay: Option<f64>,
    },
    Timer {
        delay: f64,
        timer_id: u64,
    },
    /// Move `volume` units of data to `to` through the shared-bandwidth
    /// plane; `msg` is delivered when the transfer completes.
    Transfer {
        to: SiteId,
        volume: f64,
        msg: M,
    },
}

/// Handler-side view of the simulation: lets a protocol inspect the current
/// time and topology, send messages, set timers, bump named counters and
/// record trace events.
pub struct Context<'a, M> {
    site: SiteId,
    now: f64,
    network: &'a Network,
    faults: &'a FaultState,
    outgoing: Vec<Outgoing<M>>,
    stats: &'a mut SimStats,
    trace: &'a mut Trace,
}

impl<'a, M> Context<'a, M> {
    /// The site this handler runs on.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The network topology (read-only).
    pub fn network(&self) -> &Network {
        self.network
    }

    /// Neighbors of the current site with their link delays.
    pub fn neighbors(&self) -> &[(SiteId, f64)] {
        self.network.neighbors(self.site)
    }

    /// Sends a message over the *direct link* to a neighbor. The propagation
    /// delay is the link delay. If the link is currently failed by fault
    /// injection, the message is silently lost (the sender cannot know).
    ///
    /// # Panics
    /// Panics if `to` has never been a direct neighbor — protocols must
    /// route explicitly, exactly as in the paper (messages to non-neighbors
    /// travel via the routing table, see [`Context::send_routed`]).
    pub fn send(&mut self, to: SiteId, msg: M) {
        assert!(
            self.network.has_link(self.site, to) || self.faults.link_is_failed(self.site, to),
            "site {} has no direct link to {} — use send_routed",
            self.site,
            to
        );
        self.outgoing.push(Outgoing::Send {
            to,
            msg,
            delay: None,
        });
    }

    /// Sends a message to an arbitrary site, charging an explicit end-to-end
    /// delay (typically the minimum-delay route distance taken from a routing
    /// table). The engine models the path as a single delayed delivery; the
    /// intermediate relays belong to the management plane and are accounted
    /// for in the statistics by the caller via [`Context::count`].
    ///
    /// # Panics
    /// Panics if the delay is negative or not finite.
    pub fn send_routed(&mut self, to: SiteId, delay: f64, msg: M) {
        assert!(
            delay.is_finite() && delay >= 0.0,
            "routed delay must be finite and non-negative, got {delay}"
        );
        self.outgoing.push(Outgoing::Send {
            to,
            msg,
            delay: Some(delay),
        });
    }

    /// Initiates a data transfer of `volume` units to an arbitrary site
    /// through the shared-bandwidth flow plane: after the minimum-delay
    /// path's propagation delay the data starts occupying bandwidth on
    /// that path (splitting each link's capacity max-min fairly with
    /// every concurrent flow), and `msg` is delivered to `to` when the
    /// last byte arrives. A zero-volume transfer degenerates to a routed
    /// send charged the shortest-path delay. If link failures have cut
    /// the sender off from `to` at initiation time, the transfer is lost
    /// (counted as `sim_lost_unreachable`), like a routed send.
    ///
    /// # Panics
    /// Panics if the volume is negative or not finite.
    pub fn transfer(&mut self, to: SiteId, volume: f64, msg: M) {
        assert!(
            volume.is_finite() && volume >= 0.0,
            "transfer volume must be finite and non-negative, got {volume}"
        );
        self.outgoing.push(Outgoing::Transfer { to, volume, msg });
    }

    /// Sets a timer firing `delay` time units from now.
    pub fn set_timer(&mut self, delay: f64, timer_id: u64) {
        assert!(
            delay.is_finite() && delay >= 0.0,
            "timer delay must be finite and non-negative, got {delay}"
        );
        self.outgoing.push(Outgoing::Timer { delay, timer_id });
    }

    /// Increments a named statistics counter. Names are `&'static str` so
    /// that per-message counter bumps never allocate.
    pub fn count(&mut self, name: &'static str, amount: u64) {
        self.stats.add(name, amount);
    }

    /// Increments a named counter scoped to this site.
    pub fn count_site(&mut self, name: &'static str, amount: u64) {
        self.stats
            .metrics_mut()
            .add_scoped(name, Scope::Site(self.site.0 as u32), amount);
    }

    /// Records a sample into a named streaming histogram (log-bucketed;
    /// summaries are deterministic — see `rtds_metrics`).
    pub fn record(&mut self, name: &'static str, value: f64) {
        self.stats.metrics_mut().record(name, value);
    }

    /// Records a sample into a histogram scoped to a phase label.
    pub fn record_phase(&mut self, name: &'static str, phase: u32, value: f64) {
        self.stats
            .metrics_mut()
            .record_scoped(name, Scope::Phase(phase), value);
    }

    /// Records a sample into a histogram scoped to this site.
    pub fn record_site(&mut self, name: &'static str, value: f64) {
        self.stats
            .metrics_mut()
            .record_scoped(name, Scope::Site(self.site.0 as u32), value);
    }

    /// Sets a named gauge (tracks both the last and the peak value).
    pub fn gauge_set(&mut self, name: &'static str, value: f64) {
        self.stats.metrics_mut().gauge_set(name, value);
    }

    /// Sends `msg` over every direct link of this site (the broadcast step
    /// of flooding-style protocols). Equivalent to calling [`Context::send`]
    /// for each neighbor in adjacency order, but borrows the neighbor list
    /// from the topology instead of forcing the protocol to clone it to
    /// appease the borrow checker.
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        let neighbors = self.network.neighbors(self.site);
        for (to, _) in neighbors {
            self.outgoing.push(Outgoing::Send {
                to: *to,
                msg: msg.clone(),
                delay: None,
            });
        }
    }

    /// Records a typed trace event for this site at the current time, under
    /// the given span with the given causal parent. The payload closure is
    /// evaluated **only when tracing is enabled**, so call sites pay one
    /// branch — never an allocation or a format — on untraced runs.
    pub fn trace(&mut self, span: SpanId, parent: SpanId, payload: impl FnOnce() -> TracePayload) {
        if self.trace.is_enabled() {
            let event = TraceEvent {
                time: self.now,
                site: self.site.0 as u32,
                span,
                parent,
                payload: payload(),
            };
            self.trace.record(&event);
        }
    }

    /// Returns `true` if trace events are being recorded — for call sites
    /// that need several correlated records and want to gate once.
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_enabled()
    }
}

/// A pull-based stream of external arrivals for
/// [`Simulator::run_streaming`]: the engine asks for the next arrival time
/// and takes arrivals one at a time as the clock reaches them, instead of
/// requiring the whole workload to be injected (and held in the event heap)
/// up front.
///
/// Implementations must yield arrivals in non-decreasing time order. The
/// open-loop generators and trace replayers of the `rtds-workload` crate
/// feed this trait through the job layer in `rtds-core`.
pub trait ArrivalSource<M> {
    /// Time of the next arrival, if any. Must not change between a
    /// `peek_time` and the following `take`.
    fn peek_time(&mut self) -> Option<f64>;

    /// Takes the next arrival: `(time, site, message)`.
    fn take(&mut self) -> Option<(f64, SiteId, M)>;
}

/// Names of the six engine event classes, indexed like
/// [`EngineProfile::dispatch_counts`] (and the `Scope::Phase` index of the
/// `engine_dispatch` / `engine_time_advance` metrics).
pub const EVENT_CLASS_NAMES: [&str; 6] = [
    "deliver",
    "external",
    "timer",
    "fault",
    "flow_start",
    "flow_finish",
];

/// Engine self-profile: how dispatch work split across event classes.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineProfile {
    /// Events dispatched per class (deliver/external/timer/fault/
    /// flow_start/flow_finish). Counted unconditionally — deterministic
    /// and free.
    pub dispatch_counts: [u64; 6],
    /// Wall-clock time spent dispatching each class. **NONDETERMINISTIC**:
    /// never fold into reports that are byte-compared across runs (the same
    /// discipline `exp_perf` applies to its timing fields).
    pub wall: [Duration; 6],
}

/// The engine-level ordering trace: the recorded `(time, class_rank, seq)`
/// dispatch triples plus the recording capacity.
type OrderLog = (Vec<(f64, u8, u64)>, usize);

/// The discrete-event simulator: a network, one protocol instance per site,
/// an event queue and accumulated statistics.
pub struct Simulator<P: Protocol> {
    network: Network,
    nodes: Vec<P>,
    queue: CalendarQueue<P::Msg>,
    now: f64,
    started: bool,
    stats: SimStats,
    trace: Trace,
    faults: FaultState,
    max_events: u64,
    events_processed: u64,
    /// Reused buffer behind every [`Context`]'s outgoing-action list, so
    /// dispatching an event does not allocate once the high-water mark is
    /// reached.
    outgoing_scratch: Vec<Outgoing<P::Msg>>,
    /// When `true`, per-class dispatch metrics (and wall-clock timers) flow
    /// into the metrics registry. Opt-in: the metrics become part of
    /// deterministic reports, so default runs must not grow extra keys.
    profiling: bool,
    dispatch_counts: [u64; 6],
    wall_by_class: [Duration; 6],
    /// Shared-bandwidth plane tracking in-flight [`Context::transfer`]s.
    flows: FlowPlane<P::Msg>,
    /// Reused buffer for batched same-timestamp dispatch.
    batch_scratch: Vec<Event<P::Msg>>,
    /// When set, the engine appends the `(time, class_rank, seq)` ordering
    /// triple of every dispatched event until the capacity is reached —
    /// the engine-level ordering trace behind `tests/determinism.rs`.
    order_log: Option<OrderLog>,
}

impl<P: Protocol> Simulator<P> {
    /// Creates a simulator from a network and a node factory (called once per
    /// site in id order). The event heap is pre-sized for the start-up
    /// broadcast wave (a few events per link) so early pushes do not
    /// repeatedly regrow it.
    pub fn new(network: Network, mut factory: impl FnMut(SiteId) -> P) -> Self {
        let nodes: Vec<P> = network.sites().map(&mut factory).collect();
        let faults = FaultState::new(nodes.len(), 0);
        let queue = CalendarQueue::with_capacity(4 * network.link_count() + 16);
        let mut flows = FlowPlane::new();
        flows.topo_version = network.version();
        Simulator {
            network,
            nodes,
            queue,
            now: 0.0,
            started: false,
            stats: SimStats::default(),
            trace: Trace::disabled(),
            faults,
            max_events: u64::MAX,
            events_processed: 0,
            outgoing_scratch: Vec::new(),
            profiling: false,
            dispatch_counts: [0; 6],
            wall_by_class: [Duration::ZERO; 6],
            flows,
            batch_scratch: Vec::new(),
            order_log: None,
        }
    }

    /// Starts recording the `(time, class_rank, seq)` ordering triple of
    /// every dispatched event, up to `capacity` entries. A queue-order
    /// regression then fails with a pinpointed triple diff instead of a
    /// byte-mismatch blob in the final report.
    pub fn enable_order_log(&mut self, capacity: usize) {
        self.order_log = Some((Vec::with_capacity(capacity.min(1 << 20)), capacity));
    }

    /// The ordering triples recorded so far (empty unless
    /// [`Simulator::enable_order_log`] was called).
    pub fn order_log(&self) -> &[(f64, u8, u64)] {
        self.order_log
            .as_ref()
            .map(|(v, _)| v.as_slice())
            .unwrap_or(&[])
    }

    /// Enables structured tracing as a bounded flight recorder (a ring of
    /// [`crate::trace::DEFAULT_RING_CAPACITY`] events with drop counters) —
    /// safe on arbitrarily long runs. Tracing is disabled by default; use
    /// [`Simulator::set_trace`] for an explicit ring size or a streaming
    /// JSONL sink.
    pub fn enable_trace(&mut self) {
        self.trace = Trace::flight_recorder();
    }

    /// Installs an explicit trace recorder (ring, JSONL, or disabled).
    pub fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
    }

    /// Mutable access to the trace recorder (to flush a streaming sink).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// Enables engine self-profiling: per-class dispatch counters and
    /// simulated-time-advance histograms are recorded into the metrics
    /// registry under `engine_dispatch` / `engine_time_advance` (scoped by
    /// event class, see [`EVENT_CLASS_NAMES`]), and wall-clock dispatch
    /// timers accumulate into [`EngineProfile::wall`]. Opt-in because the
    /// metrics keys become part of deterministic reports.
    pub fn enable_profiling(&mut self) {
        self.profiling = true;
    }

    /// The engine self-profile collected so far. Dispatch counts are always
    /// maintained; wall-clock fields stay zero unless
    /// [`Simulator::enable_profiling`] was called (and are nondeterministic
    /// when set — see [`EngineProfile`]).
    pub fn profile(&self) -> EngineProfile {
        EngineProfile {
            dispatch_counts: self.dispatch_counts,
            wall: self.wall_by_class,
        }
    }

    /// Caps the number of processed events (a safety net against protocol
    /// bugs that would otherwise loop forever).
    pub fn set_max_events(&mut self, max: u64) {
        self.max_events = max;
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The network being simulated.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Read access to a node.
    pub fn node(&self, s: SiteId) -> &P {
        &self.nodes[s.0]
    }

    /// Mutable access to a node (used by experiment drivers between runs; not
    /// available to protocols during a run).
    pub fn node_mut(&mut self, s: SiteId) -> &mut P {
        &mut self.nodes[s.0]
    }

    /// Iterator over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &P> {
        self.nodes.iter()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Structured trace (empty unless tracing was enabled).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of pending events in the queue (in a streaming run this is the
    /// in-flight traffic only, never the whole workload).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Injects an external stimulus (for example a job arrival) at an
    /// absolute simulated time.
    pub fn inject_at(&mut self, time: f64, site: SiteId, msg: P::Msg) {
        assert!(
            time + 1e-12 >= self.now,
            "cannot inject an event in the past (now {}, requested {time})",
            self.now
        );
        self.queue
            .push(time, site, EventPayload::External { message: msg });
    }

    /// Schedules a perturbation at an absolute simulated time. At equal
    /// timestamps faults apply before any protocol event (see the event
    /// total order in [`crate::event`]).
    pub fn schedule_fault(&mut self, time: f64, fault: FaultEvent) {
        assert!(
            time + 1e-12 >= self.now,
            "cannot schedule a fault in the past (now {}, requested {time})",
            self.now
        );
        // Faults target no particular site; SiteId(0) is a placeholder.
        self.queue
            .push(time, SiteId(0), EventPayload::Fault { fault });
    }

    /// Seeds the RNG used exclusively for message-loss draws. Call before
    /// the run; protocol determinism is unaffected either way.
    pub fn set_fault_seed(&mut self, seed: u64) {
        self.faults.reseed(seed);
    }

    /// Sets the message-loss probability immediately (faults can change it
    /// mid-run via [`FaultEvent::SetMessageLoss`]).
    pub fn set_message_loss(&mut self, probability: f64) {
        self.faults.set_loss_probability(probability);
    }

    /// Read access to the fault plane (down sites, failed links, loss).
    pub fn faults(&self) -> &FaultState {
        &self.faults
    }

    /// Number of transfers currently occupying bandwidth.
    pub fn flows_in_flight(&self) -> usize {
        self.flows.len()
    }

    /// The shared-bandwidth plane (snapshot serialization reads it).
    pub(crate) fn flow_plane(&self) -> &FlowPlane<P::Msg> {
        &self.flows
    }

    /// The pending-event queue (snapshot serialization reads it with
    /// `for_each_sorted`).
    pub(crate) fn queue(&self) -> &CalendarQueue<P::Msg> {
        &self.queue
    }

    /// Whether the per-site `on_start` wave already ran.
    pub(crate) fn started(&self) -> bool {
        self.started
    }

    /// The configured event cap.
    pub(crate) fn max_events(&self) -> u64 {
        self.max_events
    }

    /// Rebuilds a simulator from restored state (see `crate::snapshot`).
    /// Trace recording, profiling and the order log restart disabled — they
    /// are observability surfaces, not simulation state.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_restored(
        network: Network,
        nodes: Vec<P>,
        queue: CalendarQueue<P::Msg>,
        now: f64,
        started: bool,
        stats: SimStats,
        faults: FaultState,
        max_events: u64,
        events_processed: u64,
        dispatch_counts: [u64; 6],
        mut flows: FlowPlane<P::Msg>,
    ) -> Self {
        // A restored network restarts its mutation version from zero; align
        // the plane so the first fault after resume still triggers a resync.
        flows.topo_version = network.version();
        Simulator {
            network,
            nodes,
            queue,
            now,
            started,
            stats,
            trace: Trace::disabled(),
            faults,
            max_events,
            events_processed,
            outgoing_scratch: Vec::new(),
            profiling: false,
            dispatch_counts,
            wall_by_class: [Duration::ZERO; 6],
            flows,
            batch_scratch: Vec::new(),
            order_log: None,
        }
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            self.dispatch_with_ctx(SiteId(i), |node, ctx| node.on_start(ctx));
        }
    }

    /// Runs until the event queue is empty (or the event cap is reached).
    /// Returns the final simulated time.
    pub fn run_to_quiescence(&mut self) -> f64 {
        self.run_until(f64::INFINITY)
    }

    /// Runs until the queue is empty or the next event would fire after
    /// `horizon`. Returns the final simulated time.
    pub fn run_until(&mut self, horizon: f64) -> f64 {
        self.ensure_started();
        while self.process_next_batch(horizon) {}
        self.now
    }

    /// Runs with a pull-based arrival stream: before every event, arrivals
    /// that are due not later than the next queued event (and not later than
    /// `horizon`) are taken from `source` and injected, so the event heap
    /// only ever holds in-flight traffic plus the handful of arrivals due
    /// right now — a million-arrival run needs memory for the in-flight
    /// work, not for the whole workload.
    ///
    /// Because external events outrank deliveries and timers at equal
    /// timestamps (see [`crate::event`]), a streaming run is event-for-event
    /// identical to pre-injecting the same arrivals up front.
    ///
    /// Returns the final simulated time; call again with a later horizon to
    /// continue (the experiment layer interleaves chunks with plan pruning).
    pub fn run_streaming<S: ArrivalSource<P::Msg> + ?Sized>(
        &mut self,
        source: &mut S,
        horizon: f64,
    ) -> f64 {
        self.ensure_started();
        loop {
            if self.events_processed >= self.max_events {
                break;
            }
            while let Some(t) = source.peek_time() {
                if t > horizon {
                    break;
                }
                if let Some(queued) = self.queue.peek_time() {
                    if t > queued {
                        break;
                    }
                }
                let (time, site, msg) = source.take().expect("peeked arrival exists");
                assert!(
                    time + 1e-12 >= self.now,
                    "arrival source went backwards (now {}, arrival {time})",
                    self.now
                );
                self.queue.push(
                    time.max(self.now),
                    site,
                    EventPayload::External { message: msg },
                );
            }
            if !self.process_next_batch(horizon) {
                break;
            }
        }
        self.now
    }

    /// Pops and dispatches every event sharing the earliest pending
    /// timestamp, if that timestamp is at or before `horizon` and the
    /// event cap is not exhausted. The batch is drained from the calendar
    /// queue in one pass (amortizing the ordering machinery), then
    /// dispatched in `(class, seq)` order — the exact order the old
    /// per-event loop produced, because events scheduled *by* the batch
    /// carry higher sequence numbers and join the next batch. Returns
    /// whether any event was processed.
    fn process_next_batch(&mut self, horizon: f64) -> bool {
        {
            let Some(next_time) = self.queue.peek_time() else {
                return false;
            };
            if next_time > horizon {
                return false;
            }
            if self.events_processed >= self.max_events {
                return false;
            }
            let budget = (self.max_events - self.events_processed).min(usize::MAX as u64) as usize;
            let mut batch = std::mem::take(&mut self.batch_scratch);
            self.queue.pop_batch(&mut batch, budget);
            debug_assert!(!batch.is_empty());
            let prev_now = self.now;
            self.now = self.now.max(next_time);
            let mut first = true;
            for event in batch.drain(..) {
                self.events_processed += 1;
                debug_assert!(event.time + 1e-9 >= prev_now, "time went backwards");
                if let Some((log, cap)) = self.order_log.as_mut() {
                    if log.len() < *cap {
                        log.push((event.time, event.payload.class_rank(), event.seq));
                    }
                }
                let class = match &event.payload {
                    EventPayload::Deliver { .. } => 0usize,
                    EventPayload::External { .. } => 1,
                    EventPayload::Timer { .. } => 2,
                    EventPayload::Fault { .. } => 3,
                    EventPayload::FlowStart { .. } => 4,
                    EventPayload::FlowFinish { .. } => 5,
                };
                self.dispatch_counts[class] += 1;
                // Wall timers only when profiling: `Instant::now` is a
                // syscall on some platforms and the result is
                // nondeterministic anyway.
                let wall_start = if self.profiling {
                    Some(Instant::now())
                } else {
                    None
                };
                let target = event.target;
                match event.payload {
                    EventPayload::Deliver { from, message } => {
                        if self.faults.site_is_down(target) {
                            self.stats.add("sim_dropped_site_down", 1);
                        } else {
                            self.stats.messages_delivered += 1;
                            self.dispatch_with_ctx(target, |node, ctx| {
                                node.on_message(from, message, ctx)
                            });
                        }
                    }
                    EventPayload::External { message } => {
                        if self.faults.site_is_down(target) {
                            self.stats.add("sim_dropped_arrival_site_down", 1);
                        } else {
                            self.dispatch_with_ctx(target, |node, ctx| {
                                node.on_message(target, message, ctx)
                            });
                        }
                    }
                    EventPayload::Timer { timer_id } => {
                        if self.faults.site_is_down(target) {
                            self.stats.add("sim_dropped_timer_site_down", 1);
                        } else {
                            self.dispatch_with_ctx(target, |node, ctx| {
                                node.on_timer(timer_id, ctx)
                            });
                        }
                    }
                    EventPayload::Fault { fault } => {
                        self.stats.add("sim_fault_events", 1);
                        self.faults.apply(fault, &mut self.network);
                        // Mirror any link change into the flow plane so
                        // in-flight transfers see the new capacities (a
                        // removed link stalls its flows; a revived or
                        // re-provisioned one reshapes rates). The sync runs
                        // even with no flow in flight to keep cached link
                        // capacities current for future transfers.
                        if self.flows.sync_with_network(&self.network) && !self.flows.is_empty() {
                            self.reschedule_flows();
                        }
                    }
                    EventPayload::FlowStart {
                        from,
                        volume,
                        message,
                    } => {
                        match shortest_paths(&self.network, from).path_to(target) {
                            Some(path) => {
                                self.stats.add("sim_flow_started", 1);
                                self.flows.start(
                                    self.now,
                                    from,
                                    target,
                                    volume,
                                    message,
                                    &path,
                                    &self.network,
                                );
                                self.reschedule_flows();
                            }
                            None => {
                                // The topology changed between initiation
                                // and start: no path remains, the data is
                                // lost in the partition.
                                self.stats.add("sim_flow_no_path", 1);
                            }
                        }
                    }
                    EventPayload::FlowFinish { flow, epoch } => {
                        if !self.flows.finish_is_current(flow, epoch) {
                            self.stats.add("sim_flow_stale_finish", 1);
                        } else {
                            let done = self
                                .flows
                                .finish(self.now, flow)
                                .expect("current flow exists in the plane");
                            self.stats.add("sim_flow_finished", 1);
                            let elapsed = self.now - done.started;
                            self.stats.metrics_mut().record("transfer_time", elapsed);
                            if elapsed > 0.0 {
                                self.stats
                                    .metrics_mut()
                                    .record("flow_rate", done.volume / elapsed);
                            }
                            if !self.flows.is_empty() {
                                self.reschedule_flows();
                            }
                            if self.faults.site_is_down(target) {
                                self.stats.add("sim_dropped_site_down", 1);
                            } else {
                                self.stats.messages_delivered += 1;
                                let from = done.from;
                                let message = done.message;
                                self.dispatch_with_ctx(target, |node, ctx| {
                                    node.on_message(from, message, ctx)
                                });
                            }
                        }
                    }
                }
                if let Some(start) = wall_start {
                    self.wall_by_class[class] += start.elapsed();
                    let scope = Scope::Phase(class as u32);
                    let advance = if first { self.now - prev_now } else { 0.0 };
                    let metrics = self.stats.metrics_mut();
                    metrics.add_scoped("engine_dispatch", scope, 1);
                    metrics.record_scoped("engine_time_advance", scope, advance);
                }
                first = false;
            }
            self.batch_scratch = batch;
        }
        true
    }

    /// Re-solves the fair-share assignment at the current time and pushes a
    /// fresh completion event for every flow whose prediction changed, then
    /// samples per-link utilization into the metrics registry.
    fn reschedule_flows(&mut self) {
        for sched in self.flows.reschedule(self.now) {
            self.queue.push(
                sched.time,
                sched.to,
                EventPayload::FlowFinish {
                    flow: sched.flow,
                    epoch: sched.epoch,
                },
            );
        }
        for (_, _, utilization) in self.flows.link_utilization() {
            self.stats
                .metrics_mut()
                .record("link_utilization", utilization);
        }
    }

    fn dispatch_with_ctx(
        &mut self,
        site: SiteId,
        f: impl FnOnce(&mut P, &mut Context<'_, P::Msg>),
    ) {
        let mut ctx = Context {
            site,
            now: self.now,
            network: &self.network,
            faults: &self.faults,
            outgoing: std::mem::take(&mut self.outgoing_scratch),
            stats: &mut self.stats,
            trace: &mut self.trace,
        };
        f(&mut self.nodes[site.0], &mut ctx);
        let mut outgoing = ctx.outgoing;
        for action in outgoing.drain(..) {
            match action {
                Outgoing::Send { to, msg, delay } => {
                    self.stats.messages_sent += 1;
                    let delay = match delay {
                        Some(d) => {
                            // A routed send models a multi-hop management
                            // path; if link failures have physically cut
                            // the sender off from the target, it is lost.
                            if self.faults.has_failed_links() && !self.network.has_path(site, to) {
                                self.stats.add("sim_lost_unreachable", 1);
                                continue;
                            }
                            d
                        }
                        None => match self.network.link_delay(site, to) {
                            Some(d) => d,
                            None => {
                                // Checked by Context::send: the link exists
                                // or is failed — here it must be failed.
                                debug_assert!(self.faults.link_is_failed(site, to));
                                self.stats.add("sim_lost_link_down", 1);
                                continue;
                            }
                        },
                    };
                    if self.faults.roll_message_loss() {
                        self.stats.add("sim_lost_random", 1);
                        continue;
                    }
                    self.queue.push(
                        self.now + delay,
                        to,
                        EventPayload::Deliver {
                            from: site,
                            message: msg,
                        },
                    );
                }
                Outgoing::Timer { delay, timer_id } => {
                    self.queue
                        .push(self.now + delay, site, EventPayload::Timer { timer_id });
                }
                Outgoing::Transfer { to, volume, msg } => {
                    self.stats.messages_sent += 1;
                    // The head of the transfer travels the minimum-delay
                    // path; bandwidth is occupied from the moment it
                    // arrives (FlowStart) until the last byte does
                    // (FlowFinish). An infinite distance means link
                    // failures cut the sender off — lost like a routed
                    // send, before the loss roll (which must consume RNG
                    // draws identically either way).
                    let head_delay = if site == to {
                        0.0
                    } else {
                        shortest_paths(&self.network, site).dist[to.0]
                    };
                    if !head_delay.is_finite() {
                        self.stats.add("sim_lost_unreachable", 1);
                        continue;
                    }
                    if self.faults.roll_message_loss() {
                        self.stats.add("sim_lost_random", 1);
                        continue;
                    }
                    self.queue.push(
                        self.now + head_delay,
                        to,
                        EventPayload::FlowStart {
                            from: site,
                            volume,
                            message: msg,
                        },
                    );
                }
            }
        }
        self.outgoing_scratch = outgoing;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtds_net::generators::{line, ring, DelayDistribution};

    /// A tiny flooding protocol: site 0 floods a token; every site records the
    /// time it first saw it and forwards it once to all neighbors.
    #[derive(Debug, Default)]
    struct Flood {
        seen_at: Option<f64>,
    }

    impl Protocol for Flood {
        type Msg = u32;

        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            if ctx.site() == SiteId(0) {
                self.seen_at = Some(ctx.now());
                ctx.broadcast(7);
                ctx.count("floods", 1);
            }
        }

        fn on_message(&mut self, _from: SiteId, msg: u32, ctx: &mut Context<'_, u32>) {
            assert_eq!(msg, 7);
            if self.seen_at.is_none() {
                let now = ctx.now();
                self.seen_at = Some(now);
                let span = SpanId::derive(7, crate::trace::Phase::Custom, ctx.site().0 as u32, 0);
                ctx.trace(span, SpanId::NONE, || TracePayload::Mark {
                    tag: 1,
                    value: now,
                });
                ctx.broadcast(7);
            }
        }
    }

    #[test]
    fn flood_reaches_every_site_at_shortest_delay_on_a_line() {
        let net = line(5, DelayDistribution::Constant(2.0), 0);
        let mut sim = Simulator::new(net, |_| Flood::default());
        sim.enable_trace();
        let end = sim.run_to_quiescence();
        // The last event is the echo of site 4's forward arriving back at
        // site 3 (which ignores it) at t = 10.
        assert_eq!(end, 10.0);
        for (i, node) in sim.nodes().enumerate() {
            assert_eq!(node.seen_at, Some(2.0 * i as f64), "site {i}");
        }
        assert_eq!(sim.stats().named("floods"), 1);
        assert!(sim.stats().messages_sent >= 4);
        assert_eq!(sim.trace().events().len(), 4); // sites 1..4 record once
    }

    #[test]
    fn profiling_splits_dispatch_by_event_class() {
        let net = line(3, DelayDistribution::Constant(1.0), 0);
        let mut sim = Simulator::new(net, |_| TimerEcho::default());
        sim.enable_profiling();
        sim.inject_at(1.0, SiteId(2), "arrival");
        sim.schedule_fault(2.0, FaultEvent::SiteDown { site: SiteId(1) });
        sim.run_to_quiescence();
        let profile = sim.profile();
        // Timers 2 and 1 (class 2), one arrival (class 1), one fault (class
        // 3) and the routed "hello" delivery (class 0).
        assert_eq!(profile.dispatch_counts[1], 1);
        assert_eq!(profile.dispatch_counts[2], 2);
        assert_eq!(profile.dispatch_counts[3], 1);
        assert_eq!(
            profile.dispatch_counts.iter().sum::<u64>(),
            sim.events_processed()
        );
        let metrics = sim.stats().metrics();
        assert_eq!(
            metrics.counter_scoped("engine_dispatch", Scope::Phase(2)),
            2
        );
        assert!(metrics
            .histogram_scoped("engine_time_advance", Scope::Phase(2))
            .is_some());
        // Without profiling, the metrics keys must not appear (reports are
        // byte-compared across runs).
        let net = line(3, DelayDistribution::Constant(1.0), 0);
        let mut plain = Simulator::new(net, |_| TimerEcho::default());
        plain.run_to_quiescence();
        assert!(plain
            .stats()
            .metrics()
            .counter_families()
            .iter()
            .all(|(name, _)| *name != "engine_dispatch"));
        assert_eq!(
            plain.profile().dispatch_counts.iter().sum::<u64>(),
            plain.events_processed()
        );
        assert_eq!(plain.profile().wall, [Duration::ZERO; 6]);
    }

    #[test]
    fn trace_ring_bounds_memory_and_counts_drops() {
        let net = line(5, DelayDistribution::Constant(2.0), 0);
        let mut sim = Simulator::new(net, |_| Flood::default());
        sim.set_trace(Trace::ring(2));
        sim.run_to_quiescence();
        // Sites 1..4 each record one mark; the 2-slot ring keeps the last 2.
        assert_eq!(sim.trace().recorded(), 4);
        assert_eq!(sim.trace().len(), 2);
        assert_eq!(sim.trace().dropped(), 2);
        assert_eq!(sim.trace().ring_capacity(), Some(2));
    }

    #[test]
    fn ring_flood_takes_both_directions() {
        let net = ring(6, DelayDistribution::Constant(1.0), 0);
        let mut sim = Simulator::new(net, |_| Flood::default());
        sim.run_to_quiescence();
        // On a 6-ring the farthest site is 3 hops away.
        assert_eq!(sim.node(SiteId(3)).seen_at, Some(3.0));
        assert_eq!(sim.node(SiteId(5)).seen_at, Some(1.0));
    }

    /// A protocol exercising timers and routed sends.
    #[derive(Debug, Default)]
    struct TimerEcho {
        fired: Vec<u64>,
        received: Vec<(SiteId, &'static str)>,
    }

    impl Protocol for TimerEcho {
        type Msg = &'static str;

        fn on_start(&mut self, ctx: &mut Context<'_, &'static str>) {
            if ctx.site() == SiteId(0) {
                ctx.set_timer(5.0, 1);
                ctx.set_timer(2.0, 2);
            }
        }

        fn on_message(
            &mut self,
            from: SiteId,
            msg: &'static str,
            _ctx: &mut Context<'_, &'static str>,
        ) {
            self.received.push((from, msg));
        }

        fn on_timer(&mut self, timer_id: u64, ctx: &mut Context<'_, &'static str>) {
            self.fired.push(timer_id);
            if timer_id == 1 && ctx.network().site_count() > 3 {
                // Route a message to the far end of the line, charging an
                // explicit end-to-end delay of 6.
                ctx.send_routed(SiteId(3), 6.0, "hello");
            }
        }
    }

    #[test]
    fn timers_fire_in_order_and_routed_sends_arrive() {
        let net = line(4, DelayDistribution::Constant(1.0), 0);
        let mut sim = Simulator::new(net, |_| TimerEcho::default());
        let end = sim.run_to_quiescence();
        assert_eq!(sim.node(SiteId(0)).fired, vec![2, 1]);
        assert_eq!(sim.node(SiteId(3)).received, vec![(SiteId(0), "hello")]);
        assert_eq!(end, 11.0); // timer at 5 + routed delay 6
        assert_eq!(sim.events_processed(), 3);
    }

    #[test]
    fn external_injection_behaves_like_self_message() {
        let net = line(3, DelayDistribution::Constant(1.0), 0);
        let mut sim = Simulator::new(net, |_| TimerEcho::default());
        sim.inject_at(4.0, SiteId(2), "arrival");
        sim.run_to_quiescence();
        assert_eq!(sim.node(SiteId(2)).received, vec![(SiteId(2), "arrival")]);
        assert_eq!(sim.now(), 5.0_f64.max(4.0).max(sim.now()));
    }

    #[test]
    fn run_until_respects_the_horizon() {
        let net = line(3, DelayDistribution::Constant(1.0), 0);
        let mut sim = Simulator::new(net, |_| TimerEcho::default());
        sim.inject_at(10.0, SiteId(1), "late");
        let t = sim.run_until(6.0);
        assert!(t <= 6.0);
        assert!(sim.node(SiteId(1)).received.is_empty());
        sim.run_to_quiescence();
        assert_eq!(sim.node(SiteId(1)).received.len(), 1);
    }

    #[test]
    fn event_cap_stops_runaway_protocols() {
        /// A protocol that ping-pongs forever between sites 0 and 1.
        #[derive(Debug, Default)]
        struct PingPong;
        impl Protocol for PingPong {
            type Msg = u8;
            fn on_start(&mut self, ctx: &mut Context<'_, u8>) {
                if ctx.site() == SiteId(0) {
                    ctx.send(SiteId(1), 0);
                }
            }
            fn on_message(&mut self, from: SiteId, _msg: u8, ctx: &mut Context<'_, u8>) {
                ctx.send(from, 0);
            }
        }
        let net = line(2, DelayDistribution::Constant(1.0), 0);
        let mut sim = Simulator::new(net, |_| PingPong);
        sim.set_max_events(100);
        sim.run_to_quiescence();
        assert_eq!(sim.events_processed(), 100);
    }

    /// A flood that snapshots its neighbor list at start-up — like real
    /// protocol nodes do — so it keeps sending over links that fail later.
    #[derive(Debug, Default)]
    struct CachedFlood {
        neighbors: Vec<SiteId>,
        seen_at: Option<f64>,
    }

    impl Protocol for CachedFlood {
        type Msg = u32;

        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            self.neighbors = ctx.neighbors().iter().map(|(n, _)| *n).collect();
            if ctx.site() == SiteId(0) {
                self.seen_at = Some(ctx.now());
                // `self` and `ctx` are disjoint borrows: the snapshot can be
                // iterated directly, no per-broadcast clone needed.
                for &n in &self.neighbors {
                    ctx.send(n, 7);
                }
            }
        }

        fn on_message(&mut self, _from: SiteId, _msg: u32, ctx: &mut Context<'_, u32>) {
            if self.seen_at.is_none() {
                self.seen_at = Some(ctx.now());
                for &n in &self.neighbors {
                    ctx.send(n, 7);
                }
            }
        }
    }

    #[test]
    fn failed_link_loses_messages_until_recovery() {
        // Line 0-1-2-3: fail link 1-2 before the flood crosses it — sites 2
        // and 3 never see the token; site 1's send into the failed link is
        // lost, not a panic.
        let net = line(4, DelayDistribution::Constant(2.0), 0);
        let mut sim = Simulator::new(net, |_| CachedFlood::default());
        sim.schedule_fault(
            1.0,
            FaultEvent::LinkDown {
                a: SiteId(1),
                b: SiteId(2),
            },
        );
        sim.run_to_quiescence();
        assert_eq!(sim.node(SiteId(1)).seen_at, Some(2.0));
        assert_eq!(sim.node(SiteId(2)).seen_at, None);
        assert_eq!(sim.node(SiteId(3)).seen_at, None);
        assert_eq!(sim.stats().named("sim_lost_link_down"), 1);
        assert_eq!(sim.stats().named("sim_fault_events"), 1);
        assert!(sim.faults().link_is_failed(SiteId(1), SiteId(2)));
    }

    #[test]
    fn recovered_link_carries_messages_again() {
        let net = line(3, DelayDistribution::Constant(2.0), 0);
        let mut sim = Simulator::new(net, |_| TimerEcho::default());
        sim.schedule_fault(
            0.0,
            FaultEvent::LinkDown {
                a: SiteId(0),
                b: SiteId(1),
            },
        );
        sim.schedule_fault(
            4.0,
            FaultEvent::LinkUp {
                a: SiteId(0),
                b: SiteId(1),
            },
        );
        sim.inject_at(6.0, SiteId(0), "go");
        sim.run_to_quiescence();
        assert!(!sim.faults().link_is_failed(SiteId(0), SiteId(1)));
        assert_eq!(sim.network().link_delay(SiteId(0), SiteId(1)), Some(2.0));
    }

    #[test]
    fn routed_sends_are_lost_only_when_physically_cut_off() {
        /// Sends a routed message from site 0 to site 3 when timer 1 fires.
        #[derive(Debug, Default)]
        struct RoutedPing {
            received: Vec<&'static str>,
        }
        impl Protocol for RoutedPing {
            type Msg = &'static str;
            fn on_start(&mut self, ctx: &mut Context<'_, &'static str>) {
                if ctx.site() == SiteId(0) {
                    ctx.set_timer(5.0, 1);
                    ctx.set_timer(20.0, 2);
                }
            }
            fn on_message(
                &mut self,
                _from: SiteId,
                msg: &'static str,
                _ctx: &mut Context<'_, &'static str>,
            ) {
                self.received.push(msg);
            }
            fn on_timer(&mut self, timer_id: u64, ctx: &mut Context<'_, &'static str>) {
                let msg = if timer_id == 1 { "cut" } else { "healed" };
                ctx.send_routed(SiteId(3), 3.0, msg);
            }
        }
        // Ring of 4 (0-1-2-3-0): failing ONE link (0-1) leaves the 0-3-2
        // path, the routed send survives; also failing 3-0 isolates site 0.
        let net = ring(4, DelayDistribution::Constant(1.0), 0);
        let mut sim = Simulator::new(net, |_| RoutedPing::default());
        sim.schedule_fault(
            1.0,
            FaultEvent::LinkDown {
                a: SiteId(0),
                b: SiteId(1),
            },
        );
        sim.schedule_fault(
            10.0,
            FaultEvent::LinkDown {
                a: SiteId(3),
                b: SiteId(0),
            },
        );
        sim.run_to_quiescence();
        // Timer 1 (t = 5, one failed link, still connected): delivered.
        // Timer 2 (t = 20, site 0 isolated): lost.
        assert_eq!(sim.node(SiteId(3)).received, vec!["cut"]);
        assert_eq!(sim.stats().named("sim_lost_unreachable"), 1);
    }

    #[test]
    fn same_time_fault_applies_before_delivery() {
        // The fault at t = 2 (scheduled after the flood started) still beats
        // the delivery at t = 2 thanks to the (time, class, seq) order.
        let net = line(3, DelayDistribution::Constant(2.0), 0);
        let mut sim = Simulator::new(net, |_| Flood::default());
        sim.schedule_fault(2.0, FaultEvent::SiteDown { site: SiteId(1) });
        sim.run_to_quiescence();
        assert_eq!(sim.node(SiteId(1)).seen_at, None);
        assert_eq!(sim.stats().named("sim_dropped_site_down"), 1);
    }

    #[test]
    fn crashed_site_drops_messages_timers_and_arrivals_until_recovery() {
        let net = line(3, DelayDistribution::Constant(1.0), 0);
        let mut sim = Simulator::new(net, |_| TimerEcho::default());
        // Site 0's timers (t = 2 and t = 5) are set in on_start; crash site 0
        // from t = 1 to t = 3 so only the second timer fires.
        sim.schedule_fault(1.0, FaultEvent::SiteDown { site: SiteId(0) });
        sim.schedule_fault(3.0, FaultEvent::SiteUp { site: SiteId(0) });
        // An arrival at the crashed site is lost; one after recovery lands.
        sim.inject_at(2.0, SiteId(0), "lost");
        sim.inject_at(4.0, SiteId(0), "kept");
        sim.run_to_quiescence();
        assert_eq!(sim.node(SiteId(0)).fired, vec![1]);
        assert_eq!(sim.node(SiteId(0)).received, vec![(SiteId(0), "kept")]);
        assert_eq!(sim.stats().named("sim_dropped_timer_site_down"), 1);
        assert_eq!(sim.stats().named("sim_dropped_arrival_site_down"), 1);
    }

    #[test]
    fn total_message_loss_stops_the_flood_deterministically() {
        let net = ring(6, DelayDistribution::Constant(1.0), 0);
        let mut sim = Simulator::new(net, |_| Flood::default());
        sim.set_fault_seed(9);
        sim.set_message_loss(1.0);
        sim.run_to_quiescence();
        for (i, node) in sim.nodes().enumerate() {
            if i == 0 {
                assert!(node.seen_at.is_some());
            } else {
                assert_eq!(node.seen_at, None, "site {i}");
            }
        }
        assert_eq!(sim.stats().named("sim_lost_random"), 2);
        assert_eq!(sim.stats().messages_delivered, 0);
    }

    #[test]
    fn partial_message_loss_is_reproducible() {
        let run = |seed: u64| {
            let net = ring(8, DelayDistribution::Constant(1.0), 0);
            let mut sim = Simulator::new(net, |_| Flood::default());
            sim.set_fault_seed(seed);
            sim.schedule_fault(0.0, FaultEvent::SetMessageLoss { probability: 0.4 });
            sim.run_to_quiescence();
            let seen: Vec<Option<f64>> = sim.nodes().map(|n| n.seen_at).collect();
            (seen, sim.stats().named("sim_lost_random"))
        };
        let (seen_a, lost_a) = run(3);
        let (seen_b, lost_b) = run(3);
        assert_eq!(seen_a, seen_b);
        assert_eq!(lost_a, lost_b);
        assert!(
            lost_a > 0,
            "p = 0.4 over a ring flood should lose something"
        );
    }

    #[test]
    fn jitter_fault_changes_delivery_time() {
        let net = line(2, DelayDistribution::Constant(2.0), 0);
        let mut sim = Simulator::new(net, |_| TimerEcho::default());
        sim.schedule_fault(
            0.0,
            FaultEvent::SetLinkDelay {
                a: SiteId(0),
                b: SiteId(1),
                delay: 7.0,
            },
        );
        sim.inject_at(1.0, SiteId(0), "kick");
        sim.run_to_quiescence();
        assert_eq!(sim.network().link_delay(SiteId(0), SiteId(1)), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_a_fault_in_the_past_panics() {
        let net = line(2, DelayDistribution::Constant(1.0), 0);
        let mut sim = Simulator::new(net, |_| TimerEcho::default());
        sim.inject_at(5.0, SiteId(0), "x");
        sim.run_to_quiescence();
        sim.schedule_fault(1.0, FaultEvent::SiteDown { site: SiteId(0) });
    }

    #[test]
    #[should_panic(expected = "no direct link")]
    fn direct_send_to_non_neighbor_panics() {
        #[derive(Debug, Default)]
        struct Bad;
        impl Protocol for Bad {
            type Msg = u8;
            fn on_start(&mut self, ctx: &mut Context<'_, u8>) {
                if ctx.site() == SiteId(0) {
                    ctx.send(SiteId(2), 0); // not adjacent on a 3-line
                }
            }
            fn on_message(&mut self, _: SiteId, _: u8, _: &mut Context<'_, u8>) {}
        }
        let net = line(3, DelayDistribution::Constant(1.0), 0);
        let mut sim = Simulator::new(net, |_| Bad);
        sim.run_to_quiescence();
    }

    /// A protocol exercising the shared-bandwidth transfer plane: an
    /// external kick `1000 + v` initiates a transfer of volume `v` to the
    /// highest-numbered site; deliveries are recorded with their arrival
    /// time.
    #[derive(Debug, Default)]
    struct Shipper {
        received: Vec<(SiteId, u32, f64)>,
    }

    impl Protocol for Shipper {
        type Msg = u32;

        fn on_start(&mut self, _ctx: &mut Context<'_, u32>) {}

        fn on_message(&mut self, from: SiteId, msg: u32, ctx: &mut Context<'_, u32>) {
            if msg >= 1000 {
                let volume = msg - 1000;
                let to = SiteId(ctx.network().site_count() - 1);
                ctx.transfer(to, volume as f64, volume);
            } else {
                self.received.push((from, msg, ctx.now()));
            }
        }
    }

    /// 0 —1— 1 —1— 2 with finite bandwidth on both links.
    fn line3_bw(bandwidth: f64) -> Network {
        let mut net = Network::new(3);
        net.add_link_with_bandwidth(SiteId(0), SiteId(1), 1.0, bandwidth)
            .unwrap();
        net.add_link_with_bandwidth(SiteId(1), SiteId(2), 1.0, bandwidth)
            .unwrap();
        net
    }

    /// One zero-delay link 0-1 with the given bandwidth (delays out of the
    /// way, so completion times are pure transmission times).
    fn pipe(bandwidth: f64) -> Network {
        let mut net = Network::new(2);
        net.add_link_with_bandwidth(SiteId(0), SiteId(1), 0.0, bandwidth)
            .unwrap();
        net
    }

    #[test]
    fn transfer_completes_after_head_delay_plus_transmission() {
        let mut sim = Simulator::new(line3_bw(2.0), |_| Shipper::default());
        sim.inject_at(0.0, SiteId(0), 1004); // 4 units to site 2
        sim.run_to_quiescence();
        // Head travels the 2-delay path, then 4 units at rate 2 take 2 more.
        assert_eq!(sim.node(SiteId(2)).received, vec![(SiteId(0), 4, 4.0)]);
        assert_eq!(sim.stats().named("sim_flow_started"), 1);
        assert_eq!(sim.stats().named("sim_flow_finished"), 1);
        assert_eq!(sim.flows_in_flight(), 0);
        let transfer = sim
            .stats()
            .metrics()
            .histogram_scoped("transfer_time", Scope::Global)
            .expect("transfer_time recorded");
        assert_eq!(transfer.summary().count, 1);
        assert_eq!(transfer.summary().max, 2.0);
        // The lone flow saturated its bottleneck: utilization 1.
        let util = sim
            .stats()
            .metrics()
            .histogram_scoped("link_utilization", Scope::Global)
            .expect("link_utilization recorded");
        assert_eq!(util.summary().max, 1.0);
    }

    #[test]
    fn concurrent_transfers_split_bandwidth_and_reschedule_each_other() {
        let mut sim = Simulator::new(pipe(2.0), |_| Shipper::default());
        sim.inject_at(0.0, SiteId(0), 1004); // A: 4 units at t = 0
        sim.inject_at(1.0, SiteId(0), 1006); // B: 6 units at t = 1
        sim.run_to_quiescence();
        // A alone until t = 1 (2 units moved), then both at rate 1: A's
        // remaining 2 land at t = 3; B then speeds up to rate 2 and its
        // remaining 4 land at t = 5.
        assert_eq!(
            sim.node(SiteId(1)).received,
            vec![(SiteId(0), 4, 3.0), (SiteId(0), 6, 5.0)]
        );
        // Both original completion predictions were superseded once.
        assert_eq!(sim.stats().named("sim_flow_stale_finish"), 2);
        assert_eq!(sim.stats().named("sim_flow_finished"), 2);
    }

    #[test]
    fn zero_volume_transfer_degenerates_to_a_routed_send() {
        let net = line(3, DelayDistribution::Constant(1.0), 0);
        let mut sim = Simulator::new(net, |_| Shipper::default());
        sim.inject_at(0.0, SiteId(0), 1000); // 0 units to site 2
        sim.run_to_quiescence();
        // Delivered after exactly the shortest-path delay, like send_routed.
        assert_eq!(sim.node(SiteId(2)).received, vec![(SiteId(0), 0, 2.0)]);
        assert_eq!(sim.stats().named("sim_flow_finished"), 1);
    }

    #[test]
    fn bandwidth_fault_mid_transfer_reshapes_the_completion() {
        // Regression test for the shared mutation path: a bandwidth change
        // applied through the fault plane must reach in-flight flows.
        let mut sim = Simulator::new(pipe(2.0), |_| Shipper::default());
        sim.inject_at(0.0, SiteId(0), 1008); // 8 units, predicted done at 4
        sim.schedule_fault(
            2.0,
            FaultEvent::SetLinkBandwidth {
                a: SiteId(0),
                b: SiteId(1),
                bandwidth: 1.0,
            },
        );
        sim.run_to_quiescence();
        // 4 units moved by t = 2; the remaining 4 at rate 1 land at t = 6.
        assert_eq!(sim.node(SiteId(1)).received, vec![(SiteId(0), 8, 6.0)]);
        assert_eq!(sim.stats().named("sim_flow_stale_finish"), 1);
        assert_eq!(
            sim.network().link_bandwidth(SiteId(0), SiteId(1)),
            Some(1.0)
        );
    }

    #[test]
    fn link_failure_stalls_a_flow_and_recovery_revives_it() {
        let mut sim = Simulator::new(pipe(2.0), |_| Shipper::default());
        sim.inject_at(0.0, SiteId(0), 1008); // 8 units, predicted done at 4
        sim.schedule_fault(
            2.0,
            FaultEvent::LinkDown {
                a: SiteId(0),
                b: SiteId(1),
            },
        );
        sim.schedule_fault(
            6.0,
            FaultEvent::LinkUp {
                a: SiteId(0),
                b: SiteId(1),
            },
        );
        sim.run_to_quiescence();
        // 4 units moved by t = 2; stalled until t = 6 (recovery restores
        // the 2.0 bandwidth with the link); remaining 4 land at t = 8.
        assert_eq!(sim.node(SiteId(1)).received, vec![(SiteId(0), 8, 8.0)]);
        assert_eq!(sim.stats().named("sim_flow_stale_finish"), 1);
        assert_eq!(sim.stats().named("sim_flow_finished"), 1);
    }

    #[test]
    fn transfer_to_an_unreachable_site_is_lost() {
        // Sites 0-1 linked; site 2 isolated from the start.
        let mut net = Network::new(3);
        net.add_link_with_bandwidth(SiteId(0), SiteId(1), 1.0, 2.0)
            .unwrap();
        let mut sim = Simulator::new(net, |_| Shipper::default());
        sim.inject_at(0.0, SiteId(0), 1004);
        sim.run_to_quiescence();
        assert!(sim.node(SiteId(2)).received.is_empty());
        assert_eq!(sim.stats().named("sim_lost_unreachable"), 1);
        assert_eq!(sim.stats().named("sim_flow_started"), 0);
    }

    /// A slice-backed arrival source for streaming tests.
    struct SliceArrivals<M: Clone> {
        arrivals: Vec<(f64, SiteId, M)>,
        next: usize,
    }

    impl<M: Clone> ArrivalSource<M> for SliceArrivals<M> {
        fn peek_time(&mut self) -> Option<f64> {
            self.arrivals.get(self.next).map(|(t, _, _)| *t)
        }

        fn take(&mut self) -> Option<(f64, SiteId, M)> {
            let item = self.arrivals.get(self.next).cloned();
            self.next += item.is_some() as usize;
            item
        }
    }

    #[test]
    fn streaming_matches_pre_injected_arrivals() {
        let arrivals = vec![
            (1.0, SiteId(2), "a"),
            (4.0, SiteId(0), "b"),
            (4.0, SiteId(1), "c"),
            (9.0, SiteId(2), "d"),
        ];
        // Pre-materialized run: everything injected before the run starts.
        let net = line(3, DelayDistribution::Constant(1.0), 0);
        let mut pre = Simulator::new(net, |_| TimerEcho::default());
        for (t, s, m) in &arrivals {
            pre.inject_at(*t, *s, *m);
        }
        let pre_end = pre.run_to_quiescence();
        // Streaming run: arrivals pulled on demand.
        let net = line(3, DelayDistribution::Constant(1.0), 0);
        let mut streamed = Simulator::new(net, |_| TimerEcho::default());
        let mut source = SliceArrivals { arrivals, next: 0 };
        let end = streamed.run_streaming(&mut source, f64::INFINITY);
        assert_eq!(end, pre_end);
        assert_eq!(streamed.events_processed(), pre.events_processed());
        for s in 0..3 {
            assert_eq!(
                streamed.node(SiteId(s)).received,
                pre.node(SiteId(s)).received,
                "site {s}"
            );
        }
        // The source was fully drained and the queue never held the whole
        // workload at once.
        assert_eq!(source.next, 4);
        assert_eq!(streamed.queue_len(), 0);
    }

    #[test]
    fn streaming_respects_horizon_and_resumes() {
        let net = line(2, DelayDistribution::Constant(1.0), 0);
        let mut sim = Simulator::new(net, |_| TimerEcho::default());
        let mut source = SliceArrivals {
            arrivals: vec![(2.0, SiteId(0), "early"), (50.0, SiteId(1), "late")],
            next: 0,
        };
        sim.run_streaming(&mut source, 10.0);
        // The late arrival is beyond the horizon: neither injected nor lost.
        assert_eq!(source.next, 1);
        assert_eq!(sim.node(SiteId(0)).received, vec![(SiteId(0), "early")]);
        assert!(sim.node(SiteId(1)).received.is_empty());
        sim.run_streaming(&mut source, f64::INFINITY);
        assert_eq!(sim.node(SiteId(1)).received, vec![(SiteId(1), "late")]);
        assert_eq!(source.next, 2);
    }

    #[test]
    fn streaming_honours_the_event_cap() {
        let net = line(2, DelayDistribution::Constant(1.0), 0);
        let mut sim = Simulator::new(net, |_| TimerEcho::default());
        sim.set_max_events(1);
        let mut source = SliceArrivals {
            arrivals: (0..100).map(|i| (i as f64, SiteId(0), "x")).collect(),
            next: 0,
        };
        sim.run_streaming(&mut source, f64::INFINITY);
        assert_eq!(sim.events_processed(), 1);
        // Once the cap is hit the loop stops pulling instead of buffering
        // the rest of the stream into the heap.
        assert!(
            source.next <= 2,
            "pulled {} arrivals past the cap",
            source.next
        );
    }

    #[test]
    fn faults_recovery_scheduled_before_failure_leaves_the_link_down() {
        // A LinkUp for a healthy link is a no-op; the later LinkDown wins
        // and the link stays failed to the end of the run.
        let net = line(3, DelayDistribution::Constant(2.0), 0);
        let mut sim = Simulator::new(net, |_| CachedFlood::default());
        sim.schedule_fault(
            0.5,
            FaultEvent::LinkUp {
                a: SiteId(1),
                b: SiteId(2),
            },
        );
        sim.schedule_fault(
            1.0,
            FaultEvent::LinkDown {
                a: SiteId(1),
                b: SiteId(2),
            },
        );
        sim.run_to_quiescence();
        assert!(sim.faults().link_is_failed(SiteId(1), SiteId(2)));
        assert_eq!(sim.network().link_delay(SiteId(1), SiteId(2)), None);
        assert_eq!(sim.node(SiteId(2)).seen_at, None);
        assert_eq!(sim.stats().named("sim_fault_events"), 2);
    }

    #[test]
    fn faults_duplicate_site_crash_is_idempotent() {
        // Crashing an already-crashed site is absorbed: a single SiteUp
        // still recovers it (down/up is a state, not a counter).
        let net = line(3, DelayDistribution::Constant(1.0), 0);
        let mut sim = Simulator::new(net, |_| TimerEcho::default());
        sim.schedule_fault(1.0, FaultEvent::SiteDown { site: SiteId(1) });
        sim.schedule_fault(2.0, FaultEvent::SiteDown { site: SiteId(1) });
        sim.schedule_fault(3.0, FaultEvent::SiteUp { site: SiteId(1) });
        sim.inject_at(2.5, SiteId(1), "dropped");
        sim.inject_at(4.0, SiteId(1), "kept");
        sim.run_to_quiescence();
        assert!(!sim.faults().site_is_down(SiteId(1)));
        assert_eq!(sim.node(SiteId(1)).received, vec![(SiteId(1), "kept")]);
        assert_eq!(sim.stats().named("sim_dropped_arrival_site_down"), 1);
    }

    #[test]
    fn faults_on_a_removed_link_are_ignored() {
        // Failing an already-failed link must not overwrite the remembered
        // recovery delay, and jitter on a never-existing link is a no-op.
        let net = line(3, DelayDistribution::Constant(2.0), 0);
        let mut sim = Simulator::new(net, |_| TimerEcho::default());
        let down = FaultEvent::LinkDown {
            a: SiteId(0),
            b: SiteId(1),
        };
        sim.schedule_fault(1.0, down);
        sim.schedule_fault(2.0, down); // duplicate failure: ignored
        sim.schedule_fault(
            3.0,
            FaultEvent::SetLinkDelay {
                a: SiteId(0),
                b: SiteId(2), // never a link on the 3-line
                delay: 9.0,
            },
        );
        sim.schedule_fault(
            4.0,
            FaultEvent::LinkUp {
                a: SiteId(0),
                b: SiteId(1),
            },
        );
        sim.run_to_quiescence();
        // Recovery restores the original delay exactly once.
        assert!(!sim.faults().link_is_failed(SiteId(0), SiteId(1)));
        assert_eq!(sim.network().link_delay(SiteId(0), SiteId(1)), Some(2.0));
        assert_eq!(sim.network().link_delay(SiteId(0), SiteId(2)), None);
        assert_eq!(sim.network().link_count(), 2);
        assert_eq!(sim.stats().named("sim_fault_events"), 4);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn injecting_in_the_past_panics() {
        let net = line(2, DelayDistribution::Constant(1.0), 0);
        let mut sim = Simulator::new(net, |_| TimerEcho::default());
        sim.inject_at(3.0, SiteId(0), "x");
        sim.run_to_quiescence();
        sim.inject_at(1.0, SiteId(0), "too-late");
    }
}
