//! Random-offload policy: on local failure, push the whole job to a random
//! neighbor and let it try, up to a bounded number of forwarding hops.
//!
//! This is the cheapest possible cooperation scheme (one message per
//! forwarding hop, no control structure at all) and serves as a middle point
//! between the local-only lower bound and RTDS: it shows that blind
//! cooperation recovers some acceptances but far fewer than a coordinated
//! Computing Sphere, at a comparable message cost.

use crate::policy::PolicyReport;
use rand::prelude::*;
use rand::rngs::StdRng;
use rtds_graph::Job;
use rtds_net::{Network, SiteId};
use rtds_sched::executor;
use rtds_sched::{ProtocolScheduler, SchedulePlan, Scheduler, SiteResources};
use serde::{Deserialize, Serialize};

/// Parameters of the random-offload policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomOffloadConfig {
    /// Maximum number of forwarding hops after the arrival site.
    pub max_hops: usize,
    /// RNG seed (forwarding decisions are random but reproducible).
    pub seed: u64,
    /// Whether sites may split tasks across idle windows.
    pub preemptive: bool,
}

impl Default for RandomOffloadConfig {
    fn default() -> Self {
        RandomOffloadConfig {
            max_hops: 3,
            seed: 0,
            preemptive: false,
        }
    }
}

/// Runs the random-offload policy over a workload.
pub fn run_random_offload(
    network: &Network,
    jobs: &[Job],
    config: RandomOffloadConfig,
) -> PolicyReport {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut scheds: Vec<ProtocolScheduler> = network
        .sites()
        .map(|s| {
            ProtocolScheduler::new(
                SiteResources::default(),
                network.speed(s),
                config.preemptive,
            )
        })
        .collect();
    let mut report = PolicyReport::default();
    let mut ordered: Vec<&Job> = jobs.iter().collect();
    ordered.sort_by(|a, b| {
        a.arrival_time
            .partial_cmp(&b.arrival_time)
            .unwrap()
            .then(a.id.cmp(&b.id))
    });
    let mut accepted = Vec::new();
    for job in ordered {
        report.submitted += 1;
        let mut current = SiteId(job.arrival_site);
        let mut previous: Option<SiteId> = None;
        // The job experiences the forwarding latency: its effective earliest
        // start moves forward by each traversed link's delay.
        let mut now = job.arrival_time;
        let mut placed = false;
        for hop in 0..=config.max_hops {
            if let Some(adm) = scheds[current.0].admit_dag(job, now, None) {
                scheds[current.0]
                    .reserve_dag(&adm)
                    .expect("admission placements fit");
                if hop == 0 {
                    report.accepted_locally += 1;
                } else {
                    report.accepted_remotely += 1;
                }
                accepted.push((job.id, job.deadline()));
                placed = true;
                break;
            }
            if hop == config.max_hops {
                break;
            }
            // Forward to a random neighbor, avoiding an immediate bounce-back
            // when another choice exists.
            let neighbors: Vec<(SiteId, f64)> = network
                .neighbors(current)
                .iter()
                .copied()
                .filter(|(n, _)| Some(*n) != previous || network.degree(current) == 1)
                .collect();
            let Some(&(next, delay)) = neighbors.choose(&mut rng) else {
                break;
            };
            report.distribution_messages += 1;
            previous = Some(current);
            current = next;
            now += delay;
        }
        if !placed {
            report.rejected += 1;
        }
    }
    let plan_refs: Vec<&SchedulePlan> = scheds.iter().flat_map(|s| s.core_plans()).collect();
    for (job, deadline) in accepted {
        if !executor::meets_deadline(&plan_refs, job, deadline) {
            report.deadline_misses += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtds_graph::{JobId, JobParams, TaskGraph, TaskId};
    use rtds_net::generators::{ring, star, DelayDistribution};

    fn chain_job(id: u64, costs: &[f64], release: f64, deadline: f64, site: usize) -> Job {
        let mut g = TaskGraph::from_costs(costs);
        for i in 1..costs.len() {
            g.add_edge(TaskId(i - 1), TaskId(i)).unwrap();
        }
        Job::new(JobId(id), g, JobParams::new(release, deadline), site)
    }

    #[test]
    fn offloads_when_the_arrival_site_is_full() {
        let net = ring(5, DelayDistribution::Constant(1.0), 0);
        let jobs = vec![
            chain_job(1, &[35.0], 0.0, 40.0, 0),
            chain_job(2, &[35.0], 0.0, 45.0, 0),
        ];
        let report = run_random_offload(&net, &jobs, RandomOffloadConfig::default());
        assert_eq!(report.submitted, 2);
        assert_eq!(report.accepted_locally, 1);
        assert_eq!(report.accepted_remotely, 1);
        assert_eq!(report.rejected, 0);
        assert!(report.distribution_messages >= 1);
        assert_eq!(report.deadline_misses, 0);
    }

    #[test]
    fn zero_hops_degenerates_to_local_only() {
        let net = ring(5, DelayDistribution::Constant(1.0), 0);
        let jobs = vec![
            chain_job(1, &[35.0], 0.0, 40.0, 0),
            chain_job(2, &[35.0], 0.0, 45.0, 0),
        ];
        let cfg = RandomOffloadConfig {
            max_hops: 0,
            ..RandomOffloadConfig::default()
        };
        let report = run_random_offload(&net, &jobs, cfg);
        assert_eq!(report.accepted_locally, 1);
        assert_eq!(report.accepted_remotely, 0);
        assert_eq!(report.rejected, 1);
        assert_eq!(report.distribution_messages, 0);
    }

    #[test]
    fn forwarding_latency_counts_against_the_deadline() {
        // Star with very slow spokes: after one forwarding hop (delay 50) the
        // remaining window is too small.
        let net = star(4, DelayDistribution::Constant(50.0), 0);
        let jobs = vec![
            chain_job(1, &[35.0], 0.0, 40.0, 0),
            chain_job(2, &[35.0], 0.0, 60.0, 0),
        ];
        let cfg = RandomOffloadConfig {
            max_hops: 2,
            ..RandomOffloadConfig::default()
        };
        let report = run_random_offload(&net, &jobs, cfg);
        assert_eq!(report.accepted_locally, 1);
        assert_eq!(report.accepted_remotely, 0);
        assert_eq!(report.rejected, 1);
        assert_eq!(report.deadline_misses, 0);
    }

    #[test]
    fn deterministic_for_a_given_seed() {
        let net = ring(8, DelayDistribution::Constant(1.0), 0);
        let jobs: Vec<Job> = (0..10)
            .map(|i| chain_job(i, &[30.0], i as f64, i as f64 + 35.0, (i % 8) as usize))
            .collect();
        let cfg = RandomOffloadConfig::default();
        let a = run_random_offload(&net, &jobs, cfg);
        let b = run_random_offload(&net, &jobs, cfg);
        assert_eq!(a, b);
    }
}
