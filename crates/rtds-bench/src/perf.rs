//! The `exp_perf` fixed performance suite — the recorded perf trajectory.
//!
//! Every PR extends `BENCH_<n>.json`: a deterministic-schema report over a
//! fixed set of seeded workloads. The suite is the paper-baseline registry
//! scenario (its native 25-site grid) plus three registry scenarios
//! re-scaled to 16, 64 and 256 sites:
//!
//! * `paper-baseline` — the 5×5 evaluation grid with Poisson hotspots,
//! * `paper-baseline/N` — the same recipe on 4×4 / 8×8 / 16×16 grids,
//! * `wide-low-degree/N` — a random spanning tree (every link a bridge,
//!   sphere radius 3 — the routing exchange runs six phases),
//! * `hetero-speed-sites/N` — a connected Erdős–Rényi graph with ~3 average
//!   degree and a 6× speed spread under the §13 uniform-machines extension.
//!
//! Since v4 the report also carries a `flows` section: the three registry
//! flow scenarios (`incast-storm`, `bandwidth-starved-sphere`,
//! `transfer-vs-compute`) at their native sizes, pinning the shared-bandwidth
//! flow plane's trajectory alongside the scaling tiers.
//!
//! Each workload is one fully deterministic single-threaded simulation; the
//! only nondeterministic fields of the report are the timings (`wall_ms`,
//! `events_per_sec`). Everything else — event counts, message counts,
//! acceptance outcomes — is a pure function of the seed, which is what the
//! determinism suite pins (two `exp_perf --seed 7` runs must agree on every
//! non-timing field).

use rtds_core::{
    JobOutcomeKind, RtdsConfig, RtdsSystem, StreamOptions, StreamPause, StreamReport, StreamRun,
};
use rtds_net::generators::{grid, DelayDistribution};
use rtds_scenarios::{find_scenario, mix_seed, Json, Scenario, TopologyRecipe};
use rtds_sim::metrics_json::metrics_to_json;
use rtds_sim::MetricsRegistry;
use rtds_workload::{JobFactory, JobTemplate, OpenLoopSource, OpenLoopSpec, RateProcess, SizeMix};
use std::time::{Duration, Instant};

/// Identifier of the report schema (bump on breaking field changes).
/// Version 4 added the always-present `flows` section: the three registry
/// flow scenarios (shared-bandwidth transfers through `rtds-flow`) run at
/// their native sizes, reported with the same per-workload field set as the
/// main suite. Version 3 added the always-present `soak` section (null
/// unless the optional `--soak` streaming tier ran) and the `peak_rss_kb`
/// machine-dependent field inside it. Version 2 added the deterministic
/// per-workload `metrics` section (latency/laxity histogram summaries,
/// protocol counters).
pub const PERF_SCHEMA: &str = "rtds-exp-perf/4";

/// The v3 schema (no `flows` section). `--baseline` still accepts v3
/// recordings by dropping the section before comparing.
pub const PERF_SCHEMA_V3: &str = "rtds-exp-perf/3";

/// The v2 schema (no `soak` section either). `--baseline` still accepts v2
/// recordings by dropping both sections before comparing.
pub const PERF_SCHEMA_V2: &str = "rtds-exp-perf/2";

/// The original schema (no `metrics` sections either). `--baseline` still
/// accepts v1 recordings by comparing only the fields all schemas share.
pub const PERF_SCHEMA_V1: &str = "rtds-exp-perf/1";

/// The site-count tiers of the scaled scenarios.
pub const PERF_TIERS: [usize; 3] = [16, 64, 256];

/// One workload of the fixed suite: a scenario pinned to a size tier.
#[derive(Debug, Clone)]
pub struct PerfWorkload {
    /// Report name (`scenario` or `scenario/sites`).
    pub name: String,
    /// Scenario to run.
    pub scenario: Scenario,
    /// Size tier the workload belongs to (0 for the native paper baseline).
    pub tier: usize,
}

/// Re-scales a registry scenario to a site-count tier.
///
/// # Panics
/// Panics on an unknown scenario name or a tier that is not a square for
/// grid-based scenarios.
pub fn scaled_scenario(name: &str, sites: usize) -> Scenario {
    let mut scenario =
        find_scenario(name).unwrap_or_else(|| panic!("unknown registry scenario {name:?}"));
    scenario.topology.recipe = match scenario.topology.recipe {
        TopologyRecipe::Grid { wrap, .. } => {
            let side = (sites as f64).sqrt().round() as usize;
            assert_eq!(side * side, sites, "grid tier {sites} is not a square");
            TopologyRecipe::Grid {
                width: side,
                height: side,
                wrap,
            }
        }
        TopologyRecipe::RandomTree { .. } => TopologyRecipe::RandomTree { sites },
        TopologyRecipe::ErdosRenyi { .. } => TopologyRecipe::ErdosRenyi {
            sites,
            // Keep the average degree near 3 at every tier so the tiers
            // stress network size, not density.
            edge_prob: 3.0 / (sites as f64 - 1.0),
        },
        other => panic!("scenario {name:?} has an unscalable topology {other:?}"),
    };
    scenario.name = format!("{name}/{sites}");
    scenario
}

/// The registry flow scenarios of the v4 `flows` section, in run order.
/// They run at their native sizes — the section tracks the flow plane's
/// trajectory, not the scaling tiers.
pub const FLOW_SUITE: [&str; 3] = [
    "incast-storm",
    "bandwidth-starved-sphere",
    "transfer-vs-compute",
];

/// The fixed suite, in run order. `smoke` keeps only the native paper
/// baseline and the smallest tier (the CI smoke configuration).
pub fn perf_suite(smoke: bool) -> Vec<PerfWorkload> {
    let mut suite = vec![PerfWorkload {
        name: "paper-baseline".into(),
        scenario: find_scenario("paper-baseline").expect("registry scenario"),
        tier: 0,
    }];
    let tiers: &[usize] = if smoke {
        &PERF_TIERS[..1]
    } else {
        &PERF_TIERS[..]
    };
    for scenario in ["paper-baseline", "wide-low-degree", "hetero-speed-sites"] {
        for &sites in tiers {
            let scaled = scaled_scenario(scenario, sites);
            suite.push(PerfWorkload {
                name: scaled.name.clone(),
                scenario: scaled,
                tier: sites,
            });
        }
    }
    suite
}

/// Result of one workload: deterministic metrics plus the wall-clock timing.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// Workload name.
    pub name: String,
    /// Size tier (0 for the native paper baseline).
    pub tier: usize,
    /// Sites of the instantiated network.
    pub sites: usize,
    /// Links of the instantiated network.
    pub links: usize,
    /// Jobs submitted.
    pub submitted: u64,
    /// Jobs accepted by their arrival site.
    pub accepted_locally: u64,
    /// Jobs accepted after distribution.
    pub accepted_distributed: u64,
    /// Jobs rejected.
    pub rejected: u64,
    /// Accepted jobs that missed their deadline (must stay zero).
    pub deadline_misses: u64,
    /// Guarantee ratio.
    pub guarantee_ratio: f64,
    /// Engine-level messages handed in for delivery.
    pub messages_sent: u64,
    /// Engine-level messages delivered.
    pub messages_delivered: u64,
    /// Distribution messages per submitted job.
    pub messages_per_job: f64,
    /// Events processed by the engine.
    pub events_processed: u64,
    /// Final simulated time.
    pub finished_at: f64,
    /// Full telemetry of the run (histograms, counters); every summary in
    /// the report's `metrics` section is deterministic.
    pub metrics: MetricsRegistry,
    /// Wall-clock time of the simulation run (nondeterministic).
    pub wall: Duration,
}

impl WorkloadResult {
    /// Events per wall-clock second (nondeterministic).
    pub fn events_per_sec(&self) -> f64 {
        self.events_processed as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    fn to_json(&self, timings: bool) -> Json {
        let timing = |v: f64| if timings { Json::Num(v) } else { Json::Null };
        Json::object(vec![
            ("name", Json::str(&self.name)),
            ("tier", Json::UInt(self.tier as u64)),
            ("sites", Json::UInt(self.sites as u64)),
            ("links", Json::UInt(self.links as u64)),
            ("submitted", Json::UInt(self.submitted)),
            ("accepted_locally", Json::UInt(self.accepted_locally)),
            (
                "accepted_distributed",
                Json::UInt(self.accepted_distributed),
            ),
            ("rejected", Json::UInt(self.rejected)),
            ("deadline_misses", Json::UInt(self.deadline_misses)),
            ("guarantee_ratio", Json::Num(self.guarantee_ratio)),
            ("messages_sent", Json::UInt(self.messages_sent)),
            ("messages_delivered", Json::UInt(self.messages_delivered)),
            ("messages_per_job", Json::Num(self.messages_per_job)),
            ("events_processed", Json::UInt(self.events_processed)),
            ("finished_at", Json::Num(self.finished_at)),
            // Full scope detail: phase-labelled routing fan-out summaries
            // render individually. Deterministic, unlike the two timing
            // fields below.
            ("metrics", metrics_to_json(&self.metrics, true)),
            ("wall_ms", timing(self.wall.as_secs_f64() * 1e3)),
            ("events_per_sec", timing(self.events_per_sec())),
        ])
    }
}

/// Grid side of the soak tier's network (16×16 = 256 sites, the largest
/// regular tier of the suite).
pub const SOAK_SIDE: usize = 16;

/// Result of the optional `--soak <events>` tier: an open-loop Poisson
/// stream driven through a 16×16 grid until the engine's event cap stops
/// it. The workload is unbounded — only the event budget ends the run — so
/// the peak-residency fields prove the streaming path's bounded-memory
/// claim at whatever scale the budget buys, and `peak_rss_kb` records the
/// process high-water mark to back it with an OS-level number.
#[derive(Debug, Clone)]
pub struct SoakResult {
    /// The `--soak` event budget (0 when resuming from a snapshot file,
    /// whose engine carries the original cap).
    pub requested_events: u64,
    /// Whether the run went through a checkpoint → resume cycle
    /// (`--checkpoint` / `--resume`) instead of running uninterrupted.
    pub checkpointed: bool,
    /// Events actually processed (= the budget, up to quiescence slack).
    pub events_processed: u64,
    /// Final simulated time.
    pub finished_at: f64,
    /// Jobs injected before the cap hit.
    pub submitted: u64,
    /// Jobs accepted by their arrival site.
    pub accepted_locally: u64,
    /// Jobs accepted after distribution.
    pub accepted_distributed: u64,
    /// Accepted jobs that missed their deadline (must stay zero).
    pub deadline_misses: u64,
    /// Accepted jobs still in flight when the event cap cut the run. Unlike
    /// the horizon-drained scenarios this is not required to be zero — the
    /// cap truncates mid-schedule — but it stays within the in-flight
    /// high-water mark.
    pub unharvested_completions: u64,
    /// High-water mark of in-flight jobs — bounded and tiny relative to
    /// `submitted` is the whole point of the tier.
    pub peak_inflight_jobs: u64,
    /// High-water mark of committed reservations at any single site.
    pub peak_plan_reservations: u64,
    /// High-water mark of pending engine events.
    pub peak_queue_len: u64,
    /// Harvest passes performed.
    pub harvests: u64,
    /// Wall-clock time of the run (nondeterministic).
    pub wall: Duration,
    /// Peak resident set size of the whole process in kB, read from
    /// `/proc/self/status` `VmHWM` (None off Linux). Machine-dependent,
    /// nulled in the canonical report form like the timings.
    pub peak_rss_kb: Option<u64>,
}

impl SoakResult {
    /// Events per wall-clock second (nondeterministic).
    pub fn events_per_sec(&self) -> f64 {
        self.events_processed as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    fn to_json(&self, timings: bool) -> Json {
        let timing = |v: f64| if timings { Json::Num(v) } else { Json::Null };
        Json::object(vec![
            ("requested_events", Json::UInt(self.requested_events)),
            ("checkpointed", Json::Bool(self.checkpointed)),
            ("events_processed", Json::UInt(self.events_processed)),
            ("finished_at", Json::Num(self.finished_at)),
            ("submitted", Json::UInt(self.submitted)),
            ("accepted_locally", Json::UInt(self.accepted_locally)),
            (
                "accepted_distributed",
                Json::UInt(self.accepted_distributed),
            ),
            ("deadline_misses", Json::UInt(self.deadline_misses)),
            (
                "unharvested_completions",
                Json::UInt(self.unharvested_completions),
            ),
            ("peak_inflight_jobs", Json::UInt(self.peak_inflight_jobs)),
            (
                "peak_plan_reservations",
                Json::UInt(self.peak_plan_reservations),
            ),
            ("peak_queue_len", Json::UInt(self.peak_queue_len)),
            ("harvests", Json::UInt(self.harvests)),
            ("wall_ms", timing(self.wall.as_secs_f64() * 1e3)),
            ("events_per_sec", timing(self.events_per_sec())),
            (
                "peak_rss_kb",
                match self.peak_rss_kb {
                    Some(kb) if timings => Json::UInt(kb),
                    _ => Json::Null,
                },
            ),
        ])
    }
}

/// Peak resident set size of this process in kB (`VmHWM` from
/// `/proc/self/status`); None where the procfs field is unavailable.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|line| line.starts_with("VmHWM:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

/// The soak tier's system: a 16×16 constant-delay grid with the event cap
/// as the only stopping condition.
fn soak_system(seed: u64, max_events: u64) -> RtdsSystem {
    let network = grid(
        SOAK_SIDE,
        SOAK_SIDE,
        false,
        DelayDistribution::Constant(1.0),
        mix_seed(seed, 1),
    );
    let mut system = RtdsSystem::new(network, RtdsConfig::default(), mix_seed(seed, 5));
    system.set_fault_seed(mix_seed(seed, 4));
    system.set_max_events(max_events);
    system
}

/// The soak tier's job source: an unbounded Poisson stream (no horizon, no
/// job cap) — deterministic per seed, which the `--checkpoint`/`--resume`
/// cycle relies on to rebuild it fresh.
fn soak_source(seed: u64) -> JobFactory<OpenLoopSource> {
    let spec = OpenLoopSpec {
        process: RateProcess::Poisson { rate: 1.0 },
        sizes: SizeMix::Uniform { min: 5, max: 9 },
        hotspots: 0,
        horizon: f64::INFINITY,
        max_jobs: 0,
    };
    JobFactory::new(
        spec.build(SOAK_SIDE * SOAK_SIDE, mix_seed(seed, 2)),
        JobTemplate::default(),
    )
}

fn soak_result(
    requested_events: u64,
    checkpointed: bool,
    report: &StreamReport,
    wall: Duration,
) -> SoakResult {
    SoakResult {
        requested_events,
        checkpointed,
        events_processed: report.events_processed,
        finished_at: report.finished_at,
        submitted: report.guarantee.submitted,
        accepted_locally: report.guarantee.accepted_locally,
        accepted_distributed: report.guarantee.accepted_distributed,
        deadline_misses: report.deadline_misses(),
        unharvested_completions: report.unharvested_completions,
        peak_inflight_jobs: report.peak_inflight_jobs,
        peak_plan_reservations: report.peak_plan_reservations,
        peak_queue_len: report.peak_queue_len,
        harvests: report.harvests,
        wall,
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Runs the soak tier for `events` engine events. With `checkpoint_path`
/// set, the run pauses at half the budget, writes the
/// `rtds-stream-snapshot/1` document to the path, then resumes **from the
/// written bytes** with a fresh source — so every checkpointed soak also
/// exercises the full serialize → disk → deserialize cycle, and its report
/// is identical to an uninterrupted run's (a divergence panics).
pub fn run_soak(
    seed: u64,
    events: u64,
    checkpoint_path: Option<&str>,
) -> Result<SoakResult, String> {
    assert!(events > 0, "soak needs a positive event budget");
    let start = Instant::now();
    let report = match checkpoint_path {
        None => {
            let mut system = soak_system(seed, events);
            let mut source = soak_source(seed);
            system.run_streaming(&mut source, &StreamOptions::default())
        }
        Some(path) => {
            let mut system = soak_system(seed, events);
            let mut live = soak_source(seed);
            match system.run_streaming_checkpoint(
                &mut live,
                &StreamOptions::default(),
                &StreamPause::AfterEvents(events / 2),
            ) {
                StreamRun::Paused(text) => {
                    std::fs::write(path, &text)
                        .map_err(|e| format!("cannot write snapshot {path}: {e}"))?;
                    let written = std::fs::read_to_string(path)
                        .map_err(|e| format!("cannot re-read snapshot {path}: {e}"))?;
                    let mut fresh = soak_source(seed);
                    RtdsSystem::resume_streaming(&written, &mut fresh)
                        .map_err(|e| format!("snapshot {path} does not resume: {e}"))?
                }
                StreamRun::Finished(report) => *report,
            }
        }
    };
    let wall = start.elapsed();
    Ok(soak_result(
        events,
        checkpoint_path.is_some(),
        &report,
        wall,
    ))
}

/// Resumes a soak from a snapshot file written by `--checkpoint` and drives
/// it to its original event cap (the cap rides in the engine snapshot). The
/// seed must match the checkpointed run's so the rebuilt source replays the
/// same stream.
pub fn resume_soak(seed: u64, snapshot: &str) -> Result<SoakResult, String> {
    let start = Instant::now();
    let mut fresh = soak_source(seed);
    let report = RtdsSystem::resume_streaming(snapshot, &mut fresh)
        .map_err(|e| format!("snapshot does not resume: {e}"))?;
    let wall = start.elapsed();
    Ok(soak_result(0, true, &report, wall))
}

/// The aggregate report of one `exp_perf` run.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Suite seed.
    pub seed: u64,
    /// Whether the smoke subset ran.
    pub smoke: bool,
    /// One result per workload, in suite order.
    pub workloads: Vec<WorkloadResult>,
    /// One result per [`FLOW_SUITE`] scenario, in order — the v4 `flows`
    /// section. Excluded from `tiers`/`totals`, which stay about the main
    /// suite (and so from the regression tripwire's aggregate).
    pub flows: Vec<WorkloadResult>,
    /// The optional `--soak` streaming tier (renders as `null` when absent,
    /// keeping the schema shape fixed).
    pub soak: Option<SoakResult>,
}

impl PerfReport {
    /// Aggregate events/sec of one size tier (nondeterministic).
    pub fn tier_events_per_sec(&self, tier: usize) -> f64 {
        let (events, wall) = self
            .workloads
            .iter()
            .filter(|w| w.tier == tier)
            .fold((0u64, 0.0f64), |(e, s), w| {
                (e + w.events_processed, s + w.wall.as_secs_f64())
            });
        events as f64 / wall.max(1e-9)
    }

    /// Renders the report. With `timings: false` every nondeterministic
    /// field renders as `null` — the canonical form the determinism suite
    /// compares.
    pub fn to_json(&self, timings: bool) -> String {
        let timing = |v: f64| if timings { Json::Num(v) } else { Json::Null };
        let total_events: u64 = self.workloads.iter().map(|w| w.events_processed).sum();
        let total_wall: f64 = self.workloads.iter().map(|w| w.wall.as_secs_f64()).sum();
        let mut tiers = Vec::new();
        for &tier in PERF_TIERS.iter() {
            if self.workloads.iter().any(|w| w.tier == tier) {
                let events: u64 = self
                    .workloads
                    .iter()
                    .filter(|w| w.tier == tier)
                    .map(|w| w.events_processed)
                    .sum();
                tiers.push(Json::object(vec![
                    ("sites", Json::UInt(tier as u64)),
                    ("events_processed", Json::UInt(events)),
                    ("events_per_sec", timing(self.tier_events_per_sec(tier))),
                ]));
            }
        }
        Json::object(vec![
            ("schema", Json::str(PERF_SCHEMA)),
            ("seed", Json::UInt(self.seed)),
            ("smoke", Json::Bool(self.smoke)),
            (
                "workloads",
                Json::Array(self.workloads.iter().map(|w| w.to_json(timings)).collect()),
            ),
            (
                "flows",
                Json::Array(self.flows.iter().map(|w| w.to_json(timings)).collect()),
            ),
            ("tiers", Json::Array(tiers)),
            (
                "totals",
                Json::object(vec![
                    ("events_processed", Json::UInt(total_events)),
                    ("wall_ms", timing(total_wall * 1e3)),
                    (
                        "events_per_sec",
                        timing(total_events as f64 / total_wall.max(1e-9)),
                    ),
                ]),
            ),
            (
                "soak",
                match &self.soak {
                    Some(soak) => soak.to_json(timings),
                    None => Json::Null,
                },
            ),
        ])
        .render()
    }
}

/// Recursively nulls every nondeterministic field (`wall_ms`,
/// `events_per_sec`, `peak_rss_kb`) of a parsed report, producing the
/// canonical form that [`PerfReport::to_json`] emits with `timings: false`.
pub fn null_timings(json: &mut Json) {
    match json {
        Json::Object(fields) => {
            for (key, value) in fields {
                if key == "wall_ms" || key == "events_per_sec" || key == "peak_rss_kb" {
                    *value = Json::Null;
                } else {
                    null_timings(value);
                }
            }
        }
        Json::Array(items) => {
            for item in items {
                null_timings(item);
            }
        }
        _ => {}
    }
}

/// Result of diffing a run against a recorded `BENCH_<n>.json` baseline.
#[derive(Debug, Clone)]
pub struct BaselineComparison {
    /// Line-level differences between the canonical (timings-nulled)
    /// renderings, capped at a handful for readability. Empty = the
    /// deterministic fields match byte-for-byte.
    pub mismatches: Vec<String>,
    /// The baseline's recorded aggregate events/sec, if present.
    pub baseline_events_per_sec: Option<f64>,
    /// This run's aggregate events/sec.
    pub current_events_per_sec: f64,
}

impl BaselineComparison {
    /// Whether the deterministic report fields diverged.
    pub fn fields_match(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// Whether throughput regressed by more than `tolerance` (e.g. `0.2`
    /// = 20 %) against the baseline's recorded events/sec. Wall-clock
    /// numbers are machine-dependent, so this is a tripwire, not a
    /// deterministic check.
    pub fn regressed(&self, tolerance: f64) -> bool {
        match self.baseline_events_per_sec {
            Some(base) if base > 0.0 => self.current_events_per_sec < (1.0 - tolerance) * base,
            _ => false,
        }
    }
}

/// Recursively removes every `metrics` section from a parsed report,
/// producing the field set a v1 (`rtds-exp-perf/1`) recording carries —
/// the shared shape `--baseline` compares across schema versions.
pub fn strip_metrics(json: &mut Json) {
    match json {
        Json::Object(fields) => {
            fields.retain(|(key, _)| key != "metrics");
            for (_, value) in fields {
                strip_metrics(value);
            }
        }
        Json::Array(items) => {
            for item in items {
                strip_metrics(item);
            }
        }
        _ => {}
    }
}

/// Removes the top-level `soak` section from a parsed report. The soak tier
/// is optional and sized by a CLI flag, so it never participates in the
/// baseline byte-comparison — only the fixed suite is pinned.
pub fn strip_soak(json: &mut Json) {
    if let Json::Object(fields) = json {
        fields.retain(|(key, _)| key != "soak");
    }
}

/// Removes the top-level `flows` section from a parsed report — the field
/// pre-v4 recordings lack.
pub fn strip_flows(json: &mut Json) {
    if let Json::Object(fields) = json {
        fields.retain(|(key, _)| key != "flows");
    }
}

fn retag_schema(json: &mut Json, schema: &str) {
    if let Json::Object(fields) = json {
        for (key, value) in fields.iter_mut() {
            if key == "schema" {
                *value = Json::str(schema);
            }
        }
    }
}

/// Projects a parsed v4 report onto the v3 field set: drops the `flows`
/// section and retags the schema, leaving every field a v3 recording
/// pinned byte-identical.
pub fn project_to_v3(json: &mut Json) {
    strip_flows(json);
    retag_schema(json, PERF_SCHEMA_V3);
}

/// Projects a parsed report onto the v2 field set: drops the `flows` and
/// `soak` sections and retags the schema, leaving every field a v2
/// recording pinned byte-identical.
pub fn project_to_v2(json: &mut Json) {
    strip_flows(json);
    strip_soak(json);
    retag_schema(json, PERF_SCHEMA_V2);
}

/// Projects a parsed report onto the v1 field set: drops the `flows`,
/// `soak` and `metrics` sections and retags the schema, leaving every
/// field a v1 recording pinned byte-identical. The single definition of
/// the cross-schema comparison rule.
pub fn project_to_v1(json: &mut Json) {
    strip_flows(json);
    strip_soak(json);
    strip_metrics(json);
    retag_schema(json, PERF_SCHEMA_V1);
}

/// The current-report projection for a v3 baseline: the v3 field set, minus
/// the `soak` section the comparison always drops from both sides.
fn project_to_v3_sans_soak(json: &mut Json) {
    project_to_v3(json);
    strip_soak(json);
}

/// Diffs this run against a previously recorded report (`--baseline`): the
/// deterministic fields must match byte-for-byte after nulling timings and
/// dropping the optional `soak` section, and the recorded aggregate
/// events/sec is surfaced for the regression tripwire. Older baselines
/// (v3: no flows section; v2: no soak section either; v1: no metrics
/// sections either) are compared on the fields both schemas share. Fails
/// if the baseline is not valid JSON of a known schema.
pub fn compare_with_baseline(
    current: &PerfReport,
    baseline_text: &str,
) -> Result<BaselineComparison, String> {
    let mut baseline =
        Json::parse(baseline_text).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
    let schema = baseline.get("schema").and_then(Json::as_str);
    let project: fn(&mut Json) = match schema {
        Some(PERF_SCHEMA) => strip_soak,
        Some(PERF_SCHEMA_V3) => project_to_v3_sans_soak,
        Some(PERF_SCHEMA_V2) => project_to_v2,
        Some(PERF_SCHEMA_V1) => project_to_v1,
        _ => {
            return Err(format!(
                "baseline schema {schema:?} is none of {PERF_SCHEMA:?}, {PERF_SCHEMA_V3:?}, {PERF_SCHEMA_V2:?}, {PERF_SCHEMA_V1:?}"
            ))
        }
    };
    let baseline_events_per_sec = baseline
        .get("totals")
        .and_then(|t| t.get("events_per_sec"))
        .and_then(Json::as_f64);
    null_timings(&mut baseline);
    strip_soak(&mut baseline);
    let canonical_baseline = baseline.render();
    let mut projected = Json::parse(&current.to_json(false)).expect("our own rendering parses");
    project(&mut projected);
    let canonical_current = projected.render();
    let mut mismatches = Vec::new();
    if canonical_baseline != canonical_current {
        let old: Vec<&str> = canonical_baseline.lines().collect();
        let new: Vec<&str> = canonical_current.lines().collect();
        for i in 0..old.len().max(new.len()) {
            let a = old.get(i).copied().unwrap_or("<missing>");
            let b = new.get(i).copied().unwrap_or("<missing>");
            if a != b {
                mismatches.push(format!("line {}: baseline {a:?} vs current {b:?}", i + 1));
                if mismatches.len() >= 8 {
                    mismatches.push("...".to_string());
                    break;
                }
            }
        }
        if mismatches.is_empty() {
            // Same lines, different layout (should not happen with the
            // deterministic renderer) — still a mismatch.
            mismatches.push("renderings differ".to_string());
        }
    }
    let total_events: u64 = current.workloads.iter().map(|w| w.events_processed).sum();
    let total_wall: f64 = current.workloads.iter().map(|w| w.wall.as_secs_f64()).sum();
    Ok(BaselineComparison {
        mismatches,
        baseline_events_per_sec,
        current_events_per_sec: total_events as f64 / total_wall.max(1e-9),
    })
}

/// Runs one workload: instantiates the scenario for the seed, times the
/// simulation run (network/workload construction is excluded from the
/// timing) and extracts the deterministic metrics.
pub fn run_workload(workload: &PerfWorkload, seed: u64) -> WorkloadResult {
    let scenario = &workload.scenario;
    let network = scenario.build_network(seed);
    let sites = network.site_count();
    let links = network.link_count();
    let jobs = scenario.build_workload(&network, seed);
    let faults = scenario.perturbations.expand(&network, mix_seed(seed, 3));
    let mut system = RtdsSystem::new(network, scenario.config, mix_seed(seed, 5));
    system.set_fault_seed(mix_seed(seed, 4));
    system.set_max_events(scenario.max_events);
    for (time, fault) in faults {
        system.schedule_fault(time.max(0.0), fault);
    }
    system.submit_workload(jobs);
    let start = Instant::now();
    let report = system.run();
    let wall = start.elapsed();
    let rejected = report.jobs_submitted
        - report.guarantee.accepted_locally
        - report.guarantee.accepted_distributed;
    debug_assert!(report
        .jobs
        .iter()
        .all(|j| j.outcome != JobOutcomeKind::Rejected || j.completion.is_none()));
    WorkloadResult {
        name: workload.name.clone(),
        tier: workload.tier,
        sites,
        links,
        submitted: report.jobs_submitted,
        accepted_locally: report.guarantee.accepted_locally,
        accepted_distributed: report.guarantee.accepted_distributed,
        rejected,
        deadline_misses: report.deadline_misses(),
        guarantee_ratio: report.guarantee_ratio(),
        messages_sent: report.stats.messages_sent,
        messages_delivered: report.stats.messages_delivered,
        messages_per_job: report.messages_per_job,
        events_processed: system.events_processed(),
        finished_at: report.finished_at,
        metrics: report.metrics,
        wall,
    }
}

/// Runs the full (or smoke) suite for one seed. The [`FLOW_SUITE`] section
/// runs in both modes — the flow scenarios are native-sized and cheap.
pub fn run_perf_suite(seed: u64, smoke: bool) -> PerfReport {
    let workloads = perf_suite(smoke)
        .iter()
        .map(|w| run_workload(w, seed))
        .collect();
    let flows = FLOW_SUITE
        .iter()
        .map(|name| {
            let workload = PerfWorkload {
                name: (*name).to_string(),
                scenario: find_scenario(name).expect("registry flow scenario"),
                tier: 0,
            };
            run_workload(&workload, seed)
        })
        .collect();
    PerfReport {
        seed,
        smoke,
        workloads,
        flows,
        soak: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_shape_is_fixed() {
        let full = perf_suite(false);
        assert_eq!(full.len(), 1 + 3 * PERF_TIERS.len());
        let smoke = perf_suite(true);
        assert_eq!(smoke.len(), 4);
        assert!(smoke.iter().all(|w| w.tier <= 16));
        // Names are unique.
        let mut names: Vec<&str> = full.iter().map(|w| w.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), full.len());
    }

    #[test]
    fn scaled_scenarios_hit_their_tier_exactly() {
        for name in ["paper-baseline", "wide-low-degree", "hetero-speed-sites"] {
            for &sites in &PERF_TIERS {
                let scenario = scaled_scenario(name, sites);
                let net = scenario.build_network(7);
                assert_eq!(net.site_count(), sites, "{name}/{sites}");
                assert!(net.is_connected(), "{name}/{sites}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown registry scenario")]
    fn scaling_an_unknown_scenario_panics() {
        let _ = scaled_scenario("no-such-scenario", 16);
    }

    #[test]
    fn baseline_comparison_accepts_self_and_flags_differences() {
        let report = run_perf_suite(7, true);
        // A report always matches its own recording (timings and all).
        let cmp = compare_with_baseline(&report, &report.to_json(true)).unwrap();
        assert!(cmp.fields_match(), "{:?}", cmp.mismatches);
        assert!(cmp.baseline_events_per_sec.is_some());
        assert!(!cmp.regressed(0.2));
        // A doctored deterministic field is caught with a line diff.
        let tampered = report.to_json(true).replace("\"seed\": 7", "\"seed\": 8");
        let cmp = compare_with_baseline(&report, &tampered).unwrap();
        assert!(!cmp.fields_match());
        assert!(cmp.mismatches[0].contains("seed"), "{:?}", cmp.mismatches);
        // A sky-high recorded throughput trips the regression wire.
        let mut inflated = cmp;
        inflated.baseline_events_per_sec = Some(inflated.current_events_per_sec * 100.0);
        assert!(inflated.regressed(0.2));
        // Garbage and wrong-schema baselines are rejected.
        assert!(compare_with_baseline(&report, "not json").is_err());
        assert!(compare_with_baseline(&report, "{\"schema\": \"other/1\"}\n").is_err());
    }

    #[test]
    fn v1_baselines_compare_on_the_shared_field_set() {
        let report = run_perf_suite(7, true);
        // Fabricate the v1 recording of this exact run: same fields minus
        // the metrics sections, tagged with the old schema id.
        let mut v1 = Json::parse(&report.to_json(true)).unwrap();
        project_to_v1(&mut v1);
        let cmp = compare_with_baseline(&report, &v1.render()).unwrap();
        assert!(cmp.fields_match(), "{:?}", cmp.mismatches);
        assert!(cmp.baseline_events_per_sec.is_some());
        // A doctored shared field still trips the diff.
        let tampered = v1
            .render()
            .replace("\"deadline_misses\": 0", "\"deadline_misses\": 1");
        let cmp = compare_with_baseline(&report, &tampered).unwrap();
        assert!(!cmp.fields_match());
    }

    #[test]
    fn v3_baselines_compare_on_the_shared_field_set() {
        let report = run_perf_suite(7, true);
        // Fabricate the v3 recording of this exact run: same fields minus
        // the flows section, tagged with the previous schema id.
        let mut v3 = Json::parse(&report.to_json(true)).unwrap();
        project_to_v3(&mut v3);
        let rendered = v3.render();
        assert!(rendered.contains(PERF_SCHEMA_V3));
        assert!(!rendered.contains("\"flows\""));
        let cmp = compare_with_baseline(&report, &rendered).unwrap();
        assert!(cmp.fields_match(), "{:?}", cmp.mismatches);
        assert!(cmp.baseline_events_per_sec.is_some());
        // The v3 metrics sections still participate in the diff.
        let tampered = rendered.replace("\"deadline_misses\": 0", "\"deadline_misses\": 1");
        let cmp = compare_with_baseline(&report, &tampered).unwrap();
        assert!(!cmp.fields_match());
    }

    #[test]
    fn flows_section_is_deterministic_and_actually_flows() {
        let report = run_perf_suite(7, true);
        assert_eq!(report.flows.len(), FLOW_SUITE.len());
        for (flow, name) in report.flows.iter().zip(FLOW_SUITE) {
            assert_eq!(flow.name, name);
            assert_eq!(flow.deadline_misses, 0, "{name}");
            assert!(flow.metrics.counter("sim_flow_started") > 0, "{name}");
            assert!(flow.metrics.counter("task_data_sent") > 0, "{name}");
        }
        let again = run_perf_suite(7, true);
        assert_eq!(report.to_json(false), again.to_json(false));
        assert!(report.to_json(false).contains("\"flows\""));
    }

    #[test]
    fn v2_baselines_compare_on_the_shared_field_set() {
        let report = run_perf_suite(7, true);
        // Fabricate the v2 recording of this exact run: same fields minus
        // the soak section, tagged with the previous schema id.
        let mut v2 = Json::parse(&report.to_json(true)).unwrap();
        project_to_v2(&mut v2);
        let rendered = v2.render();
        assert!(rendered.contains(PERF_SCHEMA_V2));
        assert!(!rendered.contains("\"soak\""));
        let cmp = compare_with_baseline(&report, &rendered).unwrap();
        assert!(cmp.fields_match(), "{:?}", cmp.mismatches);
        assert!(cmp.baseline_events_per_sec.is_some());
        // The v2 metrics sections still participate in the diff.
        let tampered = rendered.replace("\"deadline_misses\": 0", "\"deadline_misses\": 1");
        let cmp = compare_with_baseline(&report, &tampered).unwrap();
        assert!(!cmp.fields_match());
    }

    #[test]
    fn soak_section_is_ignored_by_the_baseline_diff() {
        // The soak tier is opt-in and CLI-sized, never part of the pinned
        // trajectory: a current report that carries one still matches a
        // baseline recorded without it, and vice versa.
        let baseline = run_perf_suite(7, true);
        let recorded = baseline.to_json(true);
        let mut with_soak = baseline.clone();
        with_soak.soak = Some(run_soak(7, 5_000, None).unwrap());
        assert!(with_soak
            .to_json(false)
            .contains("\"requested_events\": 5000"));
        let cmp = compare_with_baseline(&with_soak, &recorded).unwrap();
        assert!(cmp.fields_match(), "{:?}", cmp.mismatches);
        let cmp = compare_with_baseline(&baseline, &with_soak.to_json(true)).unwrap();
        assert!(cmp.fields_match(), "{:?}", cmp.mismatches);
    }

    #[test]
    fn soak_runs_deterministically_and_survives_its_checkpoint_cycle() {
        let plain = run_soak(7, 20_000, None).unwrap();
        let again = run_soak(7, 20_000, None).unwrap();
        assert_eq!(plain.to_json(false).render(), again.to_json(false).render());
        assert_eq!(plain.requested_events, 20_000);
        assert!(!plain.checkpointed);
        assert!(plain.events_processed >= 20_000);
        assert_eq!(plain.deadline_misses, 0);
        // The cap truncates mid-schedule, so a handful of accepted jobs may
        // still be in flight — but never more than the in-flight peak.
        assert!(plain.unharvested_completions <= plain.peak_inflight_jobs);
        assert!(plain.submitted > 0);
        assert!(
            plain.peak_inflight_jobs < plain.submitted,
            "in-flight state must stay bounded: {} peak vs {} submitted",
            plain.peak_inflight_jobs,
            plain.submitted
        );

        // The checkpointed variant (pause → write → re-read → resume) and a
        // later --resume from the same file both reproduce the plain run's
        // deterministic fields exactly.
        let path = std::env::temp_dir().join("rtds_soak_unit.snapshot.json");
        let path_str = path.to_str().unwrap();
        let through = run_soak(7, 20_000, Some(path_str)).unwrap();
        let snapshot = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(through.checkpointed);
        assert!(snapshot.contains("rtds-stream-snapshot/1"));
        let resumed = resume_soak(7, &snapshot).unwrap();
        let canonical = |r: &SoakResult| {
            r.to_json(false)
                .render()
                .replace("\"checkpointed\": true", "\"checkpointed\": false")
                .replace("\"requested_events\": 0", "\"requested_events\": 20000")
        };
        assert_eq!(canonical(&through), plain.to_json(false).render());
        assert_eq!(canonical(&resumed), plain.to_json(false).render());
    }

    #[test]
    fn smoke_suite_runs_and_non_timing_fields_are_deterministic() {
        let a = run_perf_suite(7, true);
        let b = run_perf_suite(7, true);
        assert_eq!(a.to_json(false), b.to_json(false));
        assert_ne!(a.to_json(false), a.to_json(true));
        for w in &a.workloads {
            assert_eq!(w.deadline_misses, 0, "{}", w.name);
            assert!(w.events_processed > 0, "{}", w.name);
            assert!(w.events_per_sec() > 0.0, "{}", w.name);
        }
        // The canonical form nulls every timing field.
        let canonical = a.to_json(false);
        assert!(!canonical.contains("\"wall_ms\": 0."));
        assert!(canonical.contains("\"wall_ms\": null"));
    }
}
