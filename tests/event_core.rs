//! Differential tests of the event core: the slab-backed
//! [`CalendarQueue`] that now powers the engine against the retained
//! binary-heap [`EventQueue`] oracle, over arbitrary interleavings of
//! pushes, pops, batched pops and cancellations.
//!
//! The two structures promise the same total order — `(time, class, seq)`
//! with faults before external arrivals before deliveries/timers — but get
//! there very differently (bucketed calendar + serving heap + free-list
//! slab vs. one `BinaryHeap`), so any divergence here is a real ordering or
//! slab-soundness bug, not a test artifact. Timestamps are drawn from a
//! small grid of quarter-ticks to force plenty of exact collisions, which
//! is where the tie-breaking (and the same-timestamp batching) lives.

use proptest::collection::vec;
use proptest::prelude::*;
use rtds::net::SiteId;
use rtds::sim::event::EventQueue;
use rtds::sim::{CalendarQueue, EventPayload, FaultEvent};

type Msg = u64;

/// One scripted step against both queues.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Push with a time from the collision-heavy grid and a payload class.
    Push { ticks: u16, class: u8 },
    /// Pop one event from both queues and compare.
    Pop,
}

fn arbitrary_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        ((0u16..64), (0u8..6)).prop_map(|(ticks, class)| Op::Push { ticks, class }),
        Just(Op::Pop),
    ]
}

/// Payloads covering every tie-breaking class (including the flow-plane
/// events, which rank last at equal timestamps); `tag` makes each push
/// distinguishable so order comparisons are exact.
fn payload(class: u8, tag: u64) -> EventPayload<Msg> {
    match class % 6 {
        0 => EventPayload::Fault {
            fault: FaultEvent::SetLinkDelay {
                a: SiteId((tag % 3) as usize),
                b: SiteId((tag % 3) as usize + 1),
                delay: 1.0 + (tag % 5) as f64,
            },
        },
        1 => EventPayload::External { message: tag },
        2 => EventPayload::Deliver {
            from: SiteId((tag % 7) as usize),
            message: tag,
        },
        3 => EventPayload::Timer { timer_id: tag },
        4 => EventPayload::FlowStart {
            from: SiteId((tag % 7) as usize),
            volume: 1.0 + (tag % 9) as f64,
            message: tag,
        },
        _ => EventPayload::FlowFinish {
            flow: tag,
            epoch: tag % 3,
        },
    }
}

fn grid_time(ticks: u16) -> f64 {
    ticks as f64 * 0.25
}

proptest! {
    /// Interleaved pushes and pops agree event-for-event (time, sequence
    /// number, target and payload) between the calendar and the heap.
    #[test]
    fn calendar_pops_in_heap_order(ops in vec(arbitrary_op(), 0..400)) {
        let mut calendar: CalendarQueue<Msg> = CalendarQueue::new();
        let mut oracle: EventQueue<Msg> = EventQueue::new();
        let mut tag = 0u64;
        for op in ops {
            match op {
                Op::Push { ticks, class } => {
                    let time = grid_time(ticks);
                    let target = SiteId((tag % 9) as usize);
                    calendar.push(time, target, payload(class, tag));
                    oracle.push(time, target, payload(class, tag));
                    tag += 1;
                }
                Op::Pop => {
                    prop_assert_eq!(calendar.peek_time(), oracle.peek_time());
                    prop_assert_eq!(calendar.pop(), oracle.pop());
                }
            }
            prop_assert_eq!(calendar.len(), oracle.len());
        }
        // Drain whatever is left: the tails must agree too.
        while let Some(expected) = oracle.pop() {
            prop_assert_eq!(calendar.pop(), Some(expected));
        }
        prop_assert!(calendar.is_empty());
        prop_assert_eq!(calendar.pop(), None);
    }

    /// Draining through the same-timestamp batch interface yields exactly
    /// the heap's pop sequence, and every batch really is one timestamp.
    #[test]
    fn batched_dispatch_preserves_pop_order(
        ops in vec(((0u16..32), (0u8..6)), 1..300),
        max in 1usize..17,
    ) {
        let mut calendar: CalendarQueue<Msg> = CalendarQueue::new();
        let mut oracle: EventQueue<Msg> = EventQueue::new();
        for (tag, &(ticks, class)) in ops.iter().enumerate() {
            let time = grid_time(ticks);
            let target = SiteId(tag % 5);
            calendar.push(time, target, payload(class, tag as u64));
            oracle.push(time, target, payload(class, tag as u64));
        }
        let mut batch = Vec::new();
        loop {
            calendar.pop_batch(&mut batch, max);
            if batch.is_empty() {
                break;
            }
            prop_assert!(batch.len() <= max);
            for event in &batch {
                prop_assert_eq!(event.time.to_bits(), batch[0].time.to_bits());
                prop_assert_eq!(Some(event), oracle.pop().as_ref());
            }
        }
        prop_assert!(oracle.is_empty());
        prop_assert!(calendar.is_empty());
    }

    /// Cancelling an arbitrary subset removes exactly those events: the
    /// survivors still pop in heap order with their original sequence
    /// numbers, each live handle cancels exactly once, and a cancelled
    /// handle never resurfaces.
    #[test]
    fn cancellation_removes_exactly_the_cancelled(
        pushes in vec(((0u16..48), (0u8..6), proptest::bool::ANY), 1..250),
    ) {
        let mut calendar: CalendarQueue<Msg> = CalendarQueue::new();
        let mut oracle: EventQueue<Msg> = EventQueue::new();
        let mut cancelled_tags = Vec::new();
        let mut handles = Vec::new();
        for (tag, &(ticks, class, cancel)) in pushes.iter().enumerate() {
            let time = grid_time(ticks);
            let target = SiteId(tag % 4);
            let id = calendar.push(time, target, payload(class, tag as u64));
            oracle.push(time, target, payload(class, tag as u64));
            handles.push((id, cancel));
            if cancel {
                cancelled_tags.push(tag as u64);
            }
        }
        for &(id, cancel) in &handles {
            if cancel {
                prop_assert!(calendar.cancel(id), "live handle must cancel");
                prop_assert!(!calendar.cancel(id), "double cancel must be a no-op");
            }
        }
        // The oracle has no cancel: skip the cancelled tags while popping.
        let survivor = |e: &rtds::sim::Event<Msg>| {
            let tag = match &e.payload {
                EventPayload::External { message } => *message,
                EventPayload::Deliver { message, .. } => *message,
                EventPayload::Timer { timer_id } => *timer_id,
                EventPayload::FlowStart { message, .. } => *message,
                EventPayload::FlowFinish { flow, .. } => *flow,
                EventPayload::Fault { .. } => e.seq,
            };
            !cancelled_tags.contains(&tag)
        };
        while let Some(expected) = oracle.pop() {
            if !survivor(&expected) {
                continue;
            }
            prop_assert_eq!(calendar.pop(), Some(expected));
        }
        prop_assert!(calendar.is_empty());
        // Cancelled handles stay dead even once their slots are free.
        for &(id, cancel) in &handles {
            if cancel {
                prop_assert!(!calendar.cancel(id));
            }
        }
    }
}

/// Slab free-list soundness: a popped or cancelled slot is recycled for the
/// next push under a bumped generation, so the stale handle can neither
/// cancel nor otherwise disturb the slot's new occupant.
#[test]
fn stale_handles_cannot_touch_recycled_slots() {
    let mut q: CalendarQueue<Msg> = CalendarQueue::new();
    let site = SiteId(0);

    // Cancel frees the slot; the stale handle is then inert.
    let first = q.push(1.0, site, EventPayload::External { message: 1 });
    assert!(q.cancel(first));
    let second = q.push(2.0, site, EventPayload::External { message: 2 });
    assert!(
        !q.cancel(first),
        "stale handle must not cancel the new event"
    );
    assert_eq!(q.len(), 1);
    let event = q.pop().expect("second event is live");
    assert_eq!(event.payload, EventPayload::External { message: 2 });
    assert!(!q.cancel(second), "delivery invalidates the handle");

    // Pop frees the slot the same way.
    let third = q.push(3.0, site, EventPayload::Timer { timer_id: 3 });
    assert!(q.pop().is_some());
    let fourth = q.push(4.0, site, EventPayload::Timer { timer_id: 4 });
    assert!(!q.cancel(third), "handle of a delivered event is stale");
    assert!(q.cancel(fourth), "the recycled slot's new handle is live");
    assert!(q.is_empty());
    assert_eq!(q.pop(), None);
}

/// The snapshot view ([`CalendarQueue::for_each_sorted`]) lists pending
/// events in exact pop order regardless of the internal bucket layout, and
/// rebuilding through `push_raw` + `set_next_seq` reproduces the queue.
#[test]
fn sorted_view_matches_pop_order_and_round_trips() {
    let mut q: CalendarQueue<Msg> = CalendarQueue::new();
    for tag in 0u64..200 {
        // A mix of far-flung and colliding timestamps across all classes.
        let time = ((tag * 37) % 50) as f64 * 0.5;
        q.push(
            time,
            SiteId((tag % 6) as usize),
            payload((tag % 4) as u8, tag),
        );
    }
    // Pop a prefix so the serving heap, buckets and free list all hold state.
    for _ in 0..60 {
        q.pop();
    }
    let mut listed = Vec::new();
    q.for_each_sorted(|time, seq, target, payload| {
        listed.push((time, seq, target, payload.clone()));
    });
    let mut rebuilt: CalendarQueue<Msg> = CalendarQueue::new();
    for (time, seq, target, payload) in &listed {
        rebuilt.push_raw(*time, *seq, *target, payload.clone());
    }
    rebuilt.set_next_seq(q.next_seq());
    for (time, seq, target, payload) in listed {
        let original = q.pop().expect("listed events are pending");
        assert_eq!(
            (
                original.time,
                original.seq,
                original.target,
                &original.payload
            ),
            (time, seq, target, &payload)
        );
        assert_eq!(rebuilt.pop(), Some(original));
    }
    assert!(q.is_empty());
    assert!(rebuilt.is_empty());
    assert_eq!(rebuilt.next_seq(), q.next_seq());
}
