//! The built-in scenario registry.
//!
//! Sixteen named scenarios spanning the paper's baseline and the §13
//! extensions it only sketches: sporadic overload, dynamic networks (flaky
//! links, partitions), heterogeneous sites, wide low-degree topologies,
//! hard workload shapes, outright fault storms, three *flow-plane*
//! scenarios (incast-storm, bandwidth-starved-sphere, transfer-vs-compute)
//! where input data contends for finite link bandwidth, and three
//! *streaming* scenarios (diurnal-wave, pareto-burst, replayed-trace)
//! whose arrivals are pulled lazily from open-loop `rtds-workload` sources
//! — the last one routing every cell through an in-memory trace
//! record/replay round-trip.
//! Every perturbation plan starts at `t >= 30`, after the one-time PCS
//! construction (see [`crate::perturb`]).
//!
//! `lossy-messages` and `site-crash-wave` intentionally share the
//! paper-baseline topology and workload recipes: with the same sweep seed
//! they run the *same jobs on the same network*, so any acceptance-ratio
//! difference is attributable to the injected faults alone.

use crate::perturb::{Perturbation, PerturbationPlan};
use crate::spec::{
    BandwidthRecipe, ResourceRecipe, Scenario, SpeedRecipe, StreamRecipe, TopologyRecipe,
    TopologySpec, WorkloadRecipe,
};
use rtds_core::{DemandRule, RtdsConfig};
use rtds_graph::generators::{CostDistribution, DagShape};
use rtds_net::generators::DelayDistribution;
use rtds_sched::SchedulerKind;
use rtds_sim::arrivals::ArrivalProcess;
use rtds_workload::{OpenLoopSpec, RateProcess, SizeMix};

fn paper_baseline() -> Scenario {
    let mut s = Scenario::named(
        "paper-baseline",
        "25-site grid, Poisson hotspot arrivals, layered DAGs - the paper's evaluation setting",
    );
    s.workload = WorkloadRecipe {
        arrivals: ArrivalProcess::Poisson { rate: 0.05 },
        horizon: 240.0,
        hotspots: 4,
        ..WorkloadRecipe::default()
    };
    s
}

/// The built-in scenarios, in registry order.
pub fn builtin_scenarios() -> Vec<Scenario> {
    let mut scenarios = Vec::new();

    scenarios.push(paper_baseline());

    let mut s = paper_baseline();
    s.name = "overload-burst".into();
    s.description =
        "synchronized job bursts on three hotspot sites - sporadic overload stressing ACS locks"
            .into();
    s.workload.arrivals = ArrivalProcess::Bursty {
        window: 60.0,
        burst_size: 5,
    };
    s.workload.hotspots = 3;
    s.workload.laxity = (1.5, 2.5);
    scenarios.push(s);

    let mut s = Scenario::named(
        "flaky-links",
        "tree links fail, recover and jitter - every failure severs part of the network",
    );
    // On a tree every link is a bridge, so each failure physically cuts
    // routed traffic (on a grid the management plane would just reroute).
    s.topology.recipe = TopologyRecipe::RandomTree { sites: 32 };
    s.workload = WorkloadRecipe {
        arrivals: ArrivalProcess::Poisson { rate: 0.04 },
        horizon: 240.0,
        hotspots: 4,
        ..WorkloadRecipe::default()
    };
    s.perturbations = PerturbationPlan::new(vec![
        Perturbation::LinkFailures {
            start: 30.0,
            end: 220.0,
            count: 20,
            downtime: 25.0,
        },
        Perturbation::LinkJitter {
            start: 30.0,
            end: 220.0,
            period: 20.0,
            fraction: 0.15,
            factor: (0.5, 4.0),
        },
    ]);
    scenarios.push(s);

    let mut s = Scenario::named(
        "partition-and-heal",
        "the network splits into two halves mid-run and heals later",
    );
    s.topology.recipe = TopologyRecipe::Grid {
        width: 6,
        height: 4,
        wrap: false,
    };
    s.workload = WorkloadRecipe {
        arrivals: ArrivalProcess::Poisson { rate: 0.02 },
        horizon: 240.0,
        ..WorkloadRecipe::default()
    };
    s.perturbations = PerturbationPlan::new(vec![Perturbation::Partition {
        at: 80.0,
        heal_at: 160.0,
    }]);
    scenarios.push(s);

    let mut s = Scenario::named(
        "hetero-speed-sites",
        "random graph with 6x speed spread - the uniform-machines extension",
    );
    s.topology = TopologySpec {
        recipe: TopologyRecipe::ErdosRenyi {
            sites: 24,
            edge_prob: 0.12,
        },
        delays: DelayDistribution::Uniform { min: 0.5, max: 2.0 },
        bandwidths: BandwidthRecipe::Unlimited,
        speeds: SpeedRecipe::UniformRandom { min: 0.5, max: 3.0 },
    };
    s.workload = WorkloadRecipe {
        arrivals: ArrivalProcess::Poisson { rate: 0.04 },
        horizon: 240.0,
        hotspots: 4,
        ..WorkloadRecipe::default()
    };
    s.config = RtdsConfig {
        uniform_machines: true,
        ..RtdsConfig::default()
    };
    scenarios.push(s);

    let mut s = Scenario::named(
        "wide-low-degree",
        "64-site random tree - an arbitrarily wide network with minimal connectivity",
    );
    s.topology.recipe = TopologyRecipe::RandomTree { sites: 64 };
    s.workload = WorkloadRecipe {
        arrivals: ArrivalProcess::Poisson { rate: 0.01 },
        horizon: 240.0,
        ..WorkloadRecipe::default()
    };
    s.config = RtdsConfig {
        sphere_radius: 3,
        ..RtdsConfig::default()
    };
    scenarios.push(s);

    let mut s = paper_baseline();
    s.name = "deep-chain-dags".into();
    s.description =
        "12-task chain jobs - maximal precedence depth, no intra-job parallelism to exploit".into();
    s.workload.tasks_per_job = 12;
    s.workload.shape = DagShape::Chain;
    s.workload.costs = CostDistribution::Uniform { min: 1.0, max: 5.0 };
    s.workload.laxity = (1.8, 2.8);
    scenarios.push(s);

    let mut s = paper_baseline();
    s.name = "tight-laxity-storm".into();
    s.description =
        "high arrival rate with laxity factors near 1 - adjustment case (i) territory".into();
    s.workload.arrivals = ArrivalProcess::Poisson { rate: 0.08 };
    s.workload.laxity = (1.25, 1.7);
    scenarios.push(s);

    let mut s = paper_baseline();
    s.name = "lossy-messages".into();
    s.description =
        "paper baseline plus 35% message loss mid-run - distribution rounds silently fail".into();
    s.perturbations = PerturbationPlan::new(vec![Perturbation::MessageLoss {
        start: 30.0,
        end: 220.0,
        probability: 0.35,
    }]);
    scenarios.push(s);

    let mut s = paper_baseline();
    s.name = "site-crash-wave".into();
    s.description = "six site crashes with 40-unit outages - arrivals and traffic are lost".into();
    s.workload.hotspots = 0;
    s.workload.arrivals = ArrivalProcess::Poisson { rate: 0.012 };
    s.perturbations = PerturbationPlan::new(vec![Perturbation::SiteCrashes {
        start: 40.0,
        end: 200.0,
        count: 6,
        downtime: 40.0,
    }]);
    scenarios.push(s);

    // --- flow-plane scenarios (finite bandwidth, data-aware transfers) ---

    let mut s = Scenario::named(
        "incast-storm",
        "bursty hotspot at the end of a line squeezes every input transfer through one slow link",
    );
    s.topology = TopologySpec {
        recipe: TopologyRecipe::Line { sites: 10 },
        delays: DelayDistribution::Constant(1.0),
        bandwidths: BandwidthRecipe::Constant(0.5),
        speeds: SpeedRecipe::Identical,
    };
    s.workload = WorkloadRecipe {
        arrivals: ArrivalProcess::Bursty {
            window: 40.0,
            burst_size: 6,
        },
        horizon: 240.0,
        hotspots: 1,
        ccr: 2.0,
        laxity: (2.5, 4.0),
        ..WorkloadRecipe::default()
    };
    s.config = RtdsConfig {
        data_volume_aware: true,
        flow_transfers: true,
        ..RtdsConfig::default()
    };
    scenarios.push(s);

    let mut s = Scenario::named(
        "bandwidth-starved-sphere",
        "grid with randomly starved link capacities plus brownouts - transfers contend and re-solve",
    );
    s.topology.bandwidths = BandwidthRecipe::UniformRandom { min: 0.2, max: 1.0 };
    s.workload = WorkloadRecipe {
        arrivals: ArrivalProcess::Poisson { rate: 0.05 },
        horizon: 240.0,
        hotspots: 4,
        ccr: 1.0,
        ..WorkloadRecipe::default()
    };
    s.config = RtdsConfig {
        data_volume_aware: true,
        flow_transfers: true,
        ..RtdsConfig::default()
    };
    s.perturbations = PerturbationPlan::new(vec![Perturbation::BandwidthBrownout {
        start: 30.0,
        end: 200.0,
        period: 25.0,
        fraction: 0.1,
        capacity: (0.05, 0.4),
    }]);
    scenarios.push(s);

    let mut s = Scenario::named(
        "transfer-vs-compute",
        "communication-heavy DAGs (ccr 3) on ample bandwidth - when shipping data rivals computing",
    );
    s.topology.bandwidths = BandwidthRecipe::Constant(2.0);
    s.workload = WorkloadRecipe {
        arrivals: ArrivalProcess::Poisson { rate: 0.06 },
        horizon: 240.0,
        hotspots: 2,
        ccr: 3.0,
        // Deadlines are set from compute-only critical paths, so at ccr 3
        // the laxity factors must leave room for the shipping time.
        laxity: (3.5, 5.0),
        ..WorkloadRecipe::default()
    };
    s.config = RtdsConfig {
        data_volume_aware: true,
        flow_transfers: true,
        ..RtdsConfig::default()
    };
    scenarios.push(s);

    // --- streaming scenarios (open-loop rtds-workload sources) -----------

    let mut s = Scenario::named(
        "diurnal-wave",
        "streamed diurnal rate curve - load swells to a midday crest and ebbs back",
    );
    s.stream = Some(StreamRecipe {
        open_loop: OpenLoopSpec {
            process: RateProcess::Diurnal {
                base: 0.05,
                peak: 0.9,
                period: 240.0,
            },
            sizes: SizeMix::Uniform { min: 6, max: 10 },
            hotspots: 0,
            horizon: 360.0,
            max_jobs: 0,
        },
        replay: false,
    });
    scenarios.push(s);

    let mut s = Scenario::named(
        "pareto-burst",
        "streamed on/off bursts with heavy-tail Pareto job sizes - mice and elephants",
    );
    s.workload.laxity = (2.0, 3.2);
    s.stream = Some(StreamRecipe {
        open_loop: OpenLoopSpec {
            process: RateProcess::OnOff {
                on_rate: 1.0,
                off_rate: 0.05,
                mean_on: 25.0,
                mean_off: 55.0,
            },
            sizes: SizeMix::Pareto {
                alpha: 1.6,
                min: 4,
                cap: 40,
            },
            hotspots: 5,
            horizon: 300.0,
            max_jobs: 0,
        },
        replay: false,
    });
    scenarios.push(s);

    let mut s = Scenario::named(
        "replayed-trace",
        "Poisson stream recorded to an in-memory JSONL trace and replayed - every cell is a record/replay round-trip",
    );
    s.stream = Some(StreamRecipe {
        open_loop: OpenLoopSpec {
            process: RateProcess::Poisson { rate: 0.6 },
            sizes: SizeMix::Uniform { min: 5, max: 11 },
            hotspots: 0,
            horizon: 240.0,
            max_jobs: 120,
        },
        replay: true,
    });
    scenarios.push(s);

    // --- multicore scenario (heterogeneous resource bundles) --------------

    let mut s = Scenario::named(
        "hetero-multicore",
        "sites cycle through 1-4 cores with finite memory; wide Amdahl tasks under HEFT",
    );
    s.workload = WorkloadRecipe {
        arrivals: ArrivalProcess::Poisson { rate: 0.05 },
        horizon: 240.0,
        hotspots: 4,
        tasks_per_job: 12,
        shape: DagShape::LayeredRandom {
            layers: 4,
            edge_prob: 0.4,
        },
        // Nonzero CCR separates HEFT's comm-inclusive upward rank from the
        // plain critical-path rank the protocol scheduler uses.
        ccr: 0.5,
        laxity: (1.8, 3.0),
        ..WorkloadRecipe::default()
    };
    s.resources = ResourceRecipe::Heterogeneous {
        min_cores: 1,
        max_cores: 4,
        memory: 64.0,
    };
    s.config = RtdsConfig {
        scheduler: SchedulerKind::Heft,
        demand: DemandRule::WideTasks {
            cores: 4,
            parallel_fraction: 0.9,
            memory: 8.0,
        },
        ..RtdsConfig::default()
    };
    scenarios.push(s);

    scenarios
}

/// Looks up a built-in scenario by name.
pub fn find_scenario(name: &str) -> Option<Scenario> {
    builtin_scenarios().into_iter().find(|s| s.name == name)
}

/// Names of all built-in scenarios, in registry order.
pub fn scenario_names() -> Vec<String> {
    builtin_scenarios().into_iter().map(|s| s.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtds_workload::WorkloadSource;
    use std::collections::BTreeSet;

    #[test]
    fn registry_has_at_least_eight_unique_buildable_scenarios() {
        let scenarios = builtin_scenarios();
        assert!(scenarios.len() >= 8, "only {} scenarios", scenarios.len());
        let names: BTreeSet<&str> = scenarios.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.len(), scenarios.len(), "duplicate scenario names");
        for s in &scenarios {
            assert!(!s.description.is_empty(), "{}", s.name);
            let net = s.build_network(1);
            assert!(net.is_connected(), "{}", s.name);
            match s.stream {
                None => {
                    let jobs = s.build_workload(&net, 1);
                    assert!(!jobs.is_empty(), "{} generates no jobs", s.name);
                }
                Some(stream) => {
                    let mut source = stream.open_loop.build(net.site_count(), 1);
                    assert!(
                        source.next_arrival().is_some(),
                        "{} streams no arrivals",
                        s.name
                    );
                }
            }
            s.config
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", s.name));
            s.resources
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", s.name));
            // Perturbation plans expand cleanly and never start before the
            // PCS construction window.
            for (t, _) in s.perturbations.expand(&net, 1) {
                assert!(t >= 30.0, "{} perturbs at {t} < 30", s.name);
            }
        }
    }

    #[test]
    fn streaming_scenarios_are_registered() {
        for name in ["diurnal-wave", "pareto-burst", "replayed-trace"] {
            let s = find_scenario(name).unwrap_or_else(|| panic!("{name} missing"));
            assert!(s.stream.is_some(), "{name} is not a streaming scenario");
        }
        assert!(
            find_scenario("replayed-trace")
                .unwrap()
                .stream
                .unwrap()
                .replay
        );
        assert!(
            !find_scenario("diurnal-wave")
                .unwrap()
                .stream
                .unwrap()
                .replay
        );
    }

    #[test]
    fn flow_scenarios_are_registered_with_finite_bandwidth() {
        for name in [
            "incast-storm",
            "bandwidth-starved-sphere",
            "transfer-vs-compute",
        ] {
            let s = find_scenario(name).unwrap_or_else(|| panic!("{name} missing"));
            assert!(s.config.flow_transfers, "{name} must enable flow transfers");
            assert!(s.config.data_volume_aware, "{name} must be volume-aware");
            assert!(s.workload.ccr > 0.0, "{name} must decorate edge volumes");
            assert!(
                !matches!(s.topology.bandwidths, BandwidthRecipe::Unlimited),
                "{name} must capacitate its links"
            );
            let net = s.build_network(1);
            for (a, b, _) in net.links().collect::<Vec<_>>() {
                let bw = net.link_bandwidth(a, b).unwrap();
                assert!(bw.is_finite() && bw > 0.0, "{name}: link {a:?}-{b:?}");
            }
        }
        // The brownout plan of the starved sphere expands to bandwidth
        // faults (and nothing before the PCS construction window).
        let s = find_scenario("bandwidth-starved-sphere").unwrap();
        let net = s.build_network(1);
        let events = s.perturbations.expand(&net, 1);
        assert!(!events.is_empty());
        assert!(events
            .iter()
            .all(|(_, e)| matches!(e, rtds_sim::FaultEvent::SetLinkBandwidth { .. })));
    }

    #[test]
    fn hetero_multicore_is_registered_with_non_default_resources() {
        let s = find_scenario("hetero-multicore").unwrap();
        assert!(!s.resources.is_degenerate());
        assert_eq!(s.config.scheduler, SchedulerKind::Heft);
        assert!(matches!(s.config.demand, DemandRule::WideTasks { .. }));
        let net = s.build_network(1);
        let bundles = s.resources.bundles(net.site_count());
        assert_eq!(bundles.len(), net.site_count());
        assert!(bundles.iter().any(|b| b.cores > 1));
        assert!(bundles.iter().all(|b| b.memory.is_finite()));
        // Every other scenario keeps the degenerate pre-multicore model.
        for other in builtin_scenarios() {
            if other.name != "hetero-multicore" {
                assert!(other.resources.is_degenerate(), "{}", other.name);
                assert_eq!(
                    other.config.scheduler,
                    SchedulerKind::Protocol,
                    "{}",
                    other.name
                );
                assert_eq!(
                    other.config.demand,
                    DemandRule::SingleCore,
                    "{}",
                    other.name
                );
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(find_scenario("paper-baseline").is_some());
        assert!(find_scenario("flaky-links").is_some());
        assert!(find_scenario("no-such-scenario").is_none());
        assert_eq!(scenario_names().len(), builtin_scenarios().len());
    }

    #[test]
    fn fault_twins_share_the_baseline_recipes() {
        let base = find_scenario("paper-baseline").unwrap();
        let lossy = find_scenario("lossy-messages").unwrap();
        assert_eq!(base.topology, lossy.topology);
        assert_eq!(base.workload, lossy.workload);
        assert!(!lossy.perturbations.is_empty());
    }
}
