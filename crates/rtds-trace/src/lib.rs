//! Causal span tracing for the RTDS simulator.
//!
//! This crate is the observability layer the protocol stack records into:
//!
//! - [`span`] — deterministic span identities. A [`SpanId`] is *derived* from
//!   `(job_seed, phase, site, seq)` with a splitmix64 mixer, never allocated
//!   from a counter, so traces are byte-stable across runs and across sweep
//!   thread counts.
//! - [`event`] — typed, `Copy`, allocation-free payloads ([`TracePayload`])
//!   with parent/child causality links: arrival → acceptance →
//!   enrollment → trial mapping → validation → dispatch → verdict.
//! - [`sink`] — the [`TraceSink`] trait and its three implementations:
//!   [`NullSink`] (disabled, one branch per would-be event), [`RingSink`]
//!   (bounded flight recorder with drop counters), and [`JsonlSink`]
//!   (streaming `rtds-trace/1` writer).
//! - [`jsonl`] — the `rtds-trace/1` wire format: deterministic JSONL with a
//!   self-contained header; record → parse → re-render is a byte fixpoint.
//! - [`chrome`] — a chrome://tracing / Perfetto exporter over any slice of
//!   recorded events.
//!
//! Like `rtds-metrics`, the crate is deliberately dependency-free so the
//! engine hot path can sit on top of it without pulling anything else in.
//! See `docs/TRACING.md` for the span model, the wire schema and the
//! chrome-trace workflow.

pub mod chrome;
pub mod event;
pub mod jsonl;
pub mod sink;
pub mod span;

pub use chrome::chrome_trace;
pub use event::{Arg, DeferReason, RejectReason, TraceEvent, TracePayload};
pub use jsonl::{
    header_line, parse_event_line, read_jsonl, render_jsonl, render_jsonl_with_header,
    write_event_line, JsonlReader, Value, TRACE_SCHEMA,
};
pub use sink::{JsonlSink, NullSink, RingSink, TraceSink};
pub use span::{Phase, SpanId};

use std::collections::BTreeMap;

/// Checks that a chronological event stream forms well-formed span trees:
///
/// - no event uses [`SpanId::NONE`] as its own span,
/// - no event is its own parent,
/// - every non-root parent has already appeared as some earlier event's span
///   (causes precede effects),
/// - a span's non-null parent never changes,
/// - the parent links contain no cycles.
///
/// Returns `Err` with a description of the first violation.
pub fn check_well_formed(events: &[TraceEvent]) -> Result<(), String> {
    let mut parent_of: BTreeMap<SpanId, SpanId> = BTreeMap::new();
    let mut seen: std::collections::BTreeSet<SpanId> = std::collections::BTreeSet::new();
    for (i, event) in events.iter().enumerate() {
        if event.span.is_none() {
            return Err(format!("event {i} ({}) has a null span id", event.kind()));
        }
        if event.span == event.parent {
            return Err(format!("event {i} ({}) is its own parent", event.kind()));
        }
        if !event.parent.is_none() && !seen.contains(&event.parent) {
            return Err(format!(
                "event {i} ({}) references parent span {} before any event recorded it",
                event.kind(),
                event.parent.0
            ));
        }
        if !event.parent.is_none() {
            match parent_of.get(&event.span) {
                Some(existing) if *existing != event.parent => {
                    return Err(format!(
                        "event {i} ({}) re-parents span {} from {} to {}",
                        event.kind(),
                        event.span.0,
                        existing.0,
                        event.parent.0
                    ));
                }
                Some(_) => {}
                None => {
                    parent_of.insert(event.span, event.parent);
                }
            }
        }
        seen.insert(event.span);
    }
    // Walk every parent chain; with N spans a chain longer than N is a cycle.
    let n = parent_of.len();
    for start in parent_of.keys() {
        let mut cur = *start;
        for _ in 0..=n {
            match parent_of.get(&cur) {
                Some(next) => {
                    if *next == *start {
                        return Err(format!("span {} participates in a parent cycle", start.0));
                    }
                    cur = *next;
                }
                None => break,
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(span: SpanId, parent: SpanId) -> TraceEvent {
        TraceEvent {
            time: 0.0,
            site: 0,
            span,
            parent,
            payload: TracePayload::Mark { tag: 0, value: 0.0 },
        }
    }

    #[test]
    fn a_linear_span_chain_is_well_formed() {
        let a = SpanId(1);
        let b = SpanId(2);
        let c = SpanId(3);
        let events = [ev(a, SpanId::NONE), ev(b, a), ev(c, b), ev(a, SpanId::NONE)];
        assert!(check_well_formed(&events).is_ok());
    }

    #[test]
    fn orphan_parents_self_loops_and_cycles_are_rejected() {
        let a = SpanId(1);
        let b = SpanId(2);
        assert!(check_well_formed(&[ev(SpanId::NONE, SpanId::NONE)]).is_err());
        assert!(check_well_formed(&[ev(a, a)]).is_err());
        // Parent referenced before any event recorded it.
        assert!(check_well_formed(&[ev(b, a)]).is_err());
        // Re-parenting.
        let c = SpanId(3);
        assert!(check_well_formed(
            &[ev(a, SpanId::NONE), ev(c, SpanId::NONE), ev(b, a), ev(b, c),]
        )
        .is_err());
    }

    #[test]
    fn full_pipeline_record_roundtrip_and_chrome_export() {
        // Record through a ring, render, re-read, check well-formedness and
        // export — the complete in-crate pipeline in one place.
        let root = SpanId::job_root(9);
        let acc = SpanId::derive(9, Phase::Acceptance, 0, 0);
        let mut ring = RingSink::new(16);
        for event in [
            TraceEvent {
                time: 0.0,
                site: 0,
                span: root,
                parent: SpanId::NONE,
                payload: TracePayload::Arrival {
                    job: 9,
                    tasks: 1,
                    deadline: 10.0,
                },
            },
            TraceEvent {
                time: 0.0,
                site: 0,
                span: acc,
                parent: root,
                payload: TracePayload::LocalAccept {
                    job: 9,
                    completion: 4.0,
                },
            },
        ] {
            ring.record_event(&event);
        }
        let events = ring.snapshot();
        check_well_formed(&events).unwrap();
        let doc = render_jsonl(&[("seed", Value::U64(9))], &events);
        let (header, parsed) = read_jsonl(&doc).unwrap();
        assert_eq!(parsed, events);
        assert_eq!(render_jsonl_with_header(&header, &parsed), doc);
        let chrome = chrome_trace(&events);
        assert!(chrome.contains("\"name\":\"arrival\""));
    }
}
