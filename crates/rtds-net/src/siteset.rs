//! A fixed-width bitset over dense site ids.
//!
//! Sphere membership used to be answered by binary-searching a sorted
//! member vector; on the hot paths (the Mapper's peer selection, the
//! engine's reachability checks, every `Sphere::contains`) that is a
//! pointer-chasing O(log n) probe. Site ids are dense, so membership fits a
//! flat `u64` block vector: O(1) insert/contains, word-at-a-time equality
//! and an ascending iterator that matches the sorted-vector order exactly.

use crate::topology::SiteId;
use serde::{Deserialize, Serialize};

const BITS: usize = u64::BITS as usize;

/// A set of [`SiteId`]s backed by `u64` blocks.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SiteSet {
    blocks: Vec<u64>,
    len: usize,
}

impl PartialEq for SiteSet {
    /// Equality compares membership only — trailing all-zero blocks (an
    /// artifact of the capacity the set was created with) are ignored.
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        let (short, long) = if self.blocks.len() <= other.blocks.len() {
            (&self.blocks, &other.blocks)
        } else {
            (&other.blocks, &self.blocks)
        };
        short
            .iter()
            .chain(std::iter::repeat(&0))
            .zip(long.iter())
            .all(|(a, b)| a == b)
    }
}

impl Eq for SiteSet {}

impl SiteSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        SiteSet::default()
    }

    /// Creates an empty set pre-sized for sites `0..n_sites` (no block
    /// growth as long as only those are inserted).
    pub fn with_site_capacity(n_sites: usize) -> Self {
        SiteSet {
            blocks: vec![0; n_sites.div_ceil(BITS)],
            len: 0,
        }
    }

    /// Builds the set of the given sites.
    pub fn from_sites(sites: &[SiteId]) -> Self {
        let mut set = SiteSet::with_site_capacity(sites.iter().map(|s| s.0 + 1).max().unwrap_or(0));
        for &s in sites {
            set.insert(s);
        }
        set
    }

    /// Number of member sites.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no site is a member.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a site; returns `true` if it was not already a member.
    pub fn insert(&mut self, site: SiteId) -> bool {
        let (block, bit) = (site.0 / BITS, site.0 % BITS);
        if block >= self.blocks.len() {
            self.blocks.resize(block + 1, 0);
        }
        let mask = 1u64 << bit;
        let fresh = self.blocks[block] & mask == 0;
        self.blocks[block] |= mask;
        self.len += fresh as usize;
        fresh
    }

    /// Removes a site; returns `true` if it was a member.
    pub fn remove(&mut self, site: SiteId) -> bool {
        let (block, bit) = (site.0 / BITS, site.0 % BITS);
        let Some(word) = self.blocks.get_mut(block) else {
            return false;
        };
        let mask = 1u64 << bit;
        let present = *word & mask != 0;
        *word &= !mask;
        self.len -= present as usize;
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, site: SiteId) -> bool {
        self.blocks
            .get(site.0 / BITS)
            .is_some_and(|word| word & (1 << (site.0 % BITS)) != 0)
    }

    /// Removes every member, keeping the allocated width.
    pub fn clear(&mut self) {
        self.blocks.fill(0);
        self.len = 0;
    }

    /// Iterator over the member sites in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = SiteId> + '_ {
        self.blocks.iter().enumerate().flat_map(|(i, &word)| {
            let mut word = word;
            std::iter::from_fn(move || {
                if word == 0 {
                    return None;
                }
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                Some(SiteId(i * BITS + bit))
            })
        })
    }
}

impl FromIterator<SiteId> for SiteSet {
    fn from_iter<I: IntoIterator<Item = SiteId>>(iter: I) -> Self {
        let mut set = SiteSet::new();
        for s in iter {
            set.insert(s);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut set = SiteSet::new();
        assert!(set.is_empty());
        assert!(!set.contains(SiteId(3)));
        assert!(set.insert(SiteId(3)));
        assert!(!set.insert(SiteId(3)));
        assert!(set.insert(SiteId(200)));
        assert_eq!(set.len(), 2);
        assert!(set.contains(SiteId(3)));
        assert!(set.contains(SiteId(200)));
        assert!(!set.contains(SiteId(4)));
        assert!(!set.contains(SiteId(100_000)));
        assert!(set.remove(SiteId(3)));
        assert!(!set.remove(SiteId(3)));
        assert!(!set.remove(SiteId(99)));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn iteration_is_ascending_and_matches_sorted_vec() {
        let members = vec![SiteId(65), SiteId(0), SiteId(64), SiteId(7), SiteId(130)];
        let set = SiteSet::from_sites(&members);
        let mut sorted = members.clone();
        sorted.sort_unstable();
        assert_eq!(set.iter().collect::<Vec<_>>(), sorted);
        assert_eq!(set.len(), 5);
    }

    #[test]
    fn equality_ignores_capacity() {
        let mut a = SiteSet::with_site_capacity(1000);
        let mut b = SiteSet::new();
        a.insert(SiteId(9));
        b.insert(SiteId(9));
        assert_eq!(a, b);
        b.insert(SiteId(10));
        assert_ne!(a, b);
        assert_eq!(SiteSet::new(), SiteSet::with_site_capacity(512));
    }

    #[test]
    fn clear_and_collect() {
        let mut set: SiteSet = (0..70).map(SiteId).collect();
        assert_eq!(set.len(), 70);
        set.clear();
        assert!(set.is_empty());
        assert_eq!(set.iter().count(), 0);
        set.insert(SiteId(69));
        assert!(set.contains(SiteId(69)));
    }
}
