//! Global HEFT: centralized insertion-based list scheduling with
//! communication-inclusive upward ranks (Topcuoglu et al.).
//!
//! Like the [`crate::centralized`] oracle this policy has exact global
//! knowledge and zero protocol cost, but it schedules every job with the
//! classic HEFT heuristic instead of the whole-DAG-first strategy: tasks are
//! ordered by [`rtds_sched::heft_upward_rank`] — which folds per-edge data
//! volumes into the priority, unlike the compute-only critical path — and
//! each task is placed on the site minimising its earliest finish time over
//! the *exact* per-site plans (insertion-based: idle gaps between existing
//! reservations are candidates too). A job is accepted only if every task
//! fits before the deadline, so accepted jobs never miss.
//!
//! Inter-site data movement is charged at the exact pairwise propagation
//! delay, the same model the oracle's split phase uses; volumes shape the
//! task order, not the link occupancy.

use crate::policy::PolicyReport;
use rtds_graph::Job;
use rtds_net::dijkstra::all_pairs_shortest_paths;
use rtds_net::{Network, SiteId};
use rtds_sched::admission::priority_order;
use rtds_sched::executor;
use rtds_sched::{heft_upward_rank, Reservation, SchedulePlan};

/// Runs global HEFT over a workload.
pub fn run_global_heft(network: &Network, jobs: &[Job], preemptive: bool) -> PolicyReport {
    let n = network.site_count();
    let aps = all_pairs_shortest_paths(network);
    let mut plans: Vec<SchedulePlan> = (0..n).map(|_| SchedulePlan::new()).collect();
    let mut report = PolicyReport::default();
    let mut ordered: Vec<&Job> = jobs.iter().collect();
    ordered.sort_by(|a, b| {
        a.arrival_time
            .partial_cmp(&b.arrival_time)
            .unwrap()
            .then(a.id.cmp(&b.id))
    });
    // HEFT places each task contiguously; the preemptive flag is accepted
    // for signature parity with the other centralized baseline.
    let _ = preemptive;
    let mut accepted = Vec::new();
    for job in ordered {
        report.submitted += 1;
        match schedule_job(network, &aps, &plans, job) {
            Some(placements) => {
                let arrival = SiteId(job.arrival_site);
                let remote = placements.iter().any(|(site, _)| *site != arrival);
                for (site, reservation) in &placements {
                    plans[site.0]
                        .insert(*reservation)
                        .expect("HEFT placements fit");
                }
                if remote {
                    report.accepted_remotely += 1;
                } else {
                    report.accepted_locally += 1;
                }
                accepted.push((job.id, job.deadline()));
            }
            None => report.rejected += 1,
        }
    }
    let plan_refs: Vec<&SchedulePlan> = plans.iter().collect();
    for (job, deadline) in accepted {
        if !executor::meets_deadline(&plan_refs, job, deadline) {
            report.deadline_misses += 1;
        }
    }
    report
}

/// Schedules one DAG with insertion-based HEFT over the exact plans.
fn schedule_job(
    network: &Network,
    aps: &[rtds_net::dijkstra::ShortestPaths],
    plans: &[SchedulePlan],
    job: &Job,
) -> Option<Vec<(SiteId, Reservation)>> {
    let graph = &job.graph;
    let n_tasks = graph.task_count();
    if n_tasks == 0 {
        return Some(Vec::new());
    }
    let arrival = SiteId(job.arrival_site);
    let deadline = job.deadline();
    let rank = heft_upward_rank(graph);
    let order = priority_order(graph, &rank);
    let mut scratch: Vec<SchedulePlan> = plans.to_vec();
    let mut placed_site = vec![SiteId(0); n_tasks];
    let mut finish = vec![0.0f64; n_tasks];
    let mut out = Vec::new();
    for t in order {
        let cost = graph.cost(t);
        let mut best: Option<(SiteId, f64, f64)> = None;
        for s in network.sites() {
            let transfer = aps[arrival.0].dist[s.0];
            if !transfer.is_finite() {
                continue;
            }
            let mut ready = job.arrival_time.max(job.release()) + transfer;
            for p in graph.predecessors(t) {
                let delay = if placed_site[p.0] == s {
                    0.0
                } else {
                    aps[placed_site[p.0].0].dist[s.0]
                };
                ready = ready.max(finish[p.0] + delay);
            }
            let duration = cost / network.speed(s);
            if let Some(start) = scratch[s.0].earliest_fit(ready, deadline, duration) {
                let end = start + duration;
                let better = best.map(|(_, _, e)| end < e - 1e-12).unwrap_or(true);
                if better {
                    best = Some((s, start, end));
                }
            }
        }
        let (s, start, end) = best?;
        let reservation = Reservation {
            job: job.id,
            task: t,
            start,
            end,
        };
        scratch[s.0].insert(reservation).ok()?;
        placed_site[t.0] = s;
        finish[t.0] = end;
        out.push((s, reservation));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local_only::run_local_only;
    use rtds_graph::{JobId, JobParams, TaskGraph, TaskId};
    use rtds_net::generators::{ring, DelayDistribution};

    fn chain_job(id: u64, costs: &[f64], release: f64, deadline: f64, site: usize) -> Job {
        let mut g = TaskGraph::from_costs(costs);
        for i in 1..costs.len() {
            g.add_edge(TaskId(i - 1), TaskId(i)).unwrap();
        }
        Job::new(JobId(id), g, JobParams::new(release, deadline), site)
    }

    fn fork_job(id: u64, width: usize, cost: f64, deadline: f64, site: usize) -> Job {
        let mut g = TaskGraph::new();
        let src = g.add_task(1.0);
        let branches: Vec<_> = (0..width).map(|_| g.add_task(cost)).collect();
        let sink = g.add_task(1.0);
        for t in &branches {
            g.add_edge(src, *t).unwrap();
            g.add_edge(*t, sink).unwrap();
        }
        Job::new(JobId(id), g, JobParams::new(0.0, deadline), site)
    }

    #[test]
    fn heft_dominates_local_only_and_never_misses() {
        let net = ring(6, DelayDistribution::Constant(1.0), 0);
        let jobs: Vec<Job> = (0..8)
            .map(|i| chain_job(i, &[30.0], (i / 2) as f64, (i / 2) as f64 + 40.0, 0))
            .collect();
        let local = run_local_only(&net, &jobs, false);
        let heft = run_global_heft(&net, &jobs, false);
        assert!(heft.accepted() > local.accepted());
        assert_eq!(heft.deadline_misses, 0);
        assert_eq!(heft.distribution_messages, 0);
    }

    #[test]
    fn heft_splits_wide_jobs_across_sites() {
        let net = ring(8, DelayDistribution::Constant(1.0), 0);
        let jobs = vec![fork_job(1, 6, 30.0, 45.0, 0)];
        let heft = run_global_heft(&net, &jobs, false);
        assert_eq!(heft.accepted(), 1);
        assert_eq!(heft.accepted_remotely, 1);
        assert_eq!(heft.deadline_misses, 0);
    }

    #[test]
    fn infeasible_jobs_are_rejected() {
        let net = ring(4, DelayDistribution::Constant(1.0), 0);
        let jobs = vec![chain_job(1, &[100.0], 0.0, 20.0, 0)];
        let heft = run_global_heft(&net, &jobs, false);
        assert_eq!(heft.rejected, 1);
        assert_eq!(heft.accepted(), 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let net = ring(7, DelayDistribution::Uniform { min: 0.5, max: 2.0 }, 3);
        let jobs: Vec<Job> = (0..12)
            .map(|i| chain_job(i, &[12.0, 8.0], i as f64, i as f64 + 50.0, (i % 7) as usize))
            .collect();
        assert_eq!(
            run_global_heft(&net, &jobs, false),
            run_global_heft(&net, &jobs, false)
        );
    }
}
