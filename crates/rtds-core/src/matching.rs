//! Maximum bipartite matching (the §10 "maximum coupling").
//!
//! During Trial-Mapping validation the initiator receives, from every site
//! `j` of the ACS, the list of logical processors whose task sets `T_i` the
//! site could locally satisfy. It then computes "a maximum coupling
//! (classical problem in graph theory solved in polynomial time)" between
//! sites and logical processors. If the coupling has cardinality `|U|`, the
//! induced permutation assigns each logical processor to a distinct physical
//! site; otherwise the job is rejected.
//!
//! We implement Hopcroft–Karp (`O(E √V)`) over a flat CSR (offsets + edges)
//! adjacency with reusable scratch buffers, plus a brute-force reference
//! used by the property tests. The historical nested-vector entry point
//! ([`maximum_bipartite_matching`]) is kept as a thin wrapper; property
//! tests pin that the CSR engine matches it edge-for-edge.

use std::cell::RefCell;
use std::collections::VecDeque;

const NIL: u32 = u32::MAX;
const INF: u32 = u32::MAX;

/// A bipartite graph in compressed-sparse-row layout: the right neighbors of
/// left vertex `l` are `edges[offsets[l]..offsets[l + 1]]`, in insertion
/// order (which fixes the tie-breaking — and therefore the exact matching —
/// of the solver).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BipartiteCsr {
    left_count: usize,
    right_count: usize,
    offsets: Vec<u32>,
    edges: Vec<u32>,
}

impl BipartiteCsr {
    /// Builds the CSR from nested adjacency lists (`lists[l]` = right
    /// neighbors of left vertex `l`).
    ///
    /// # Panics
    /// Panics if a right vertex is out of range.
    pub fn from_lists(lists: &[Vec<usize>], right_count: usize) -> Self {
        let mut csr = BipartiteCsr::default();
        csr.rebuild_from_lists(lists, right_count);
        csr
    }

    /// Rebuilds the CSR in place (the Trial-Mapping scratch-reuse path: the
    /// allocation survives across jobs).
    pub fn rebuild_from_lists(&mut self, lists: &[Vec<usize>], right_count: usize) {
        self.left_count = lists.len();
        self.right_count = right_count;
        self.offsets.clear();
        self.edges.clear();
        self.offsets.reserve(lists.len() + 1);
        self.offsets.push(0);
        for adj in lists {
            for &r in adj {
                assert!(r < right_count, "right vertex {r} out of range");
                self.edges.push(r as u32);
            }
            self.offsets.push(self.edges.len() as u32);
        }
    }

    /// Rebuilds the CSR in place from `(left, right)` pairs delivered in any
    /// order (counting sort, two passes; within one left vertex the pair
    /// order is preserved). Pairs with out-of-range endpoints are ignored —
    /// the §10 round treats unknown logical processors as noise.
    pub fn rebuild_from_pairs(
        &mut self,
        left_count: usize,
        right_count: usize,
        pairs: impl Iterator<Item = (usize, usize)> + Clone,
    ) {
        self.left_count = left_count;
        self.right_count = right_count;
        self.offsets.clear();
        self.offsets.resize(left_count + 1, 0);
        let in_range = |&(l, r): &(usize, usize)| l < left_count && r < right_count;
        for (l, _) in pairs.clone().filter(in_range) {
            self.offsets[l + 1] += 1;
        }
        for i in 1..self.offsets.len() {
            self.offsets[i] += self.offsets[i - 1];
        }
        self.edges.clear();
        self.edges.resize(self.offsets[left_count] as usize, 0);
        // Fill using the offsets themselves as bucket cursors (no extra
        // allocation): after the fill `offsets[l]` holds the *end* of bucket
        // `l`, i.e. the array has shifted one slot left — shift it back.
        for (l, r) in pairs.filter(in_range) {
            self.edges[self.offsets[l] as usize] = r as u32;
            self.offsets[l] += 1;
        }
        for l in (1..=left_count).rev() {
            self.offsets[l] = self.offsets[l - 1];
        }
        if let Some(first) = self.offsets.first_mut() {
            *first = 0;
        }
    }

    /// Number of left vertices.
    pub fn left_count(&self) -> usize {
        self.left_count
    }

    /// Number of right vertices.
    pub fn right_count(&self) -> usize {
        self.right_count
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The right neighbors of left vertex `l`, in insertion order.
    #[inline]
    pub fn neighbors(&self, l: usize) -> &[u32] {
        &self.edges[self.offsets[l] as usize..self.offsets[l + 1] as usize]
    }
}

/// Reusable working memory of the Hopcroft–Karp solver. One scratch serves
/// any number of [`maximum_bipartite_matching_csr`] calls; buffers are
/// resized, never shrunk, so repeated Trial-Mapping validations stop
/// allocating once the high-water mark is reached.
#[derive(Debug, Default)]
pub struct MatchScratch {
    match_left: Vec<u32>,
    match_right: Vec<u32>,
    dist: Vec<u32>,
    queue: VecDeque<u32>,
}

thread_local! {
    static SHARED_WORKSPACE: RefCell<(BipartiteCsr, MatchScratch)> =
        RefCell::new((BipartiteCsr::default(), MatchScratch::default()));
}

/// Runs `f` with the thread-local CSR + scratch pair (each simulation is
/// single-threaded, so every Trial-Mapping validation of a run reuses one
/// allocation instead of rebuilding nested vectors per job).
pub fn with_matching_workspace<T>(f: impl FnOnce(&mut BipartiteCsr, &mut MatchScratch) -> T) -> T {
    SHARED_WORKSPACE.with(|ws| {
        let (csr, scratch) = &mut *ws.borrow_mut();
        f(csr, scratch)
    })
}

/// Computes a maximum matching over a CSR bipartite graph, reusing the given
/// scratch buffers.
///
/// Returns `assignment[l] = Some(r)` for matched left vertices. The matching
/// is deterministic for a given input ordering and identical, edge order for
/// edge order, to the nested-vector implementation this replaced.
pub fn maximum_bipartite_matching_csr(
    csr: &BipartiteCsr,
    scratch: &mut MatchScratch,
) -> Vec<Option<usize>> {
    let (left_count, right_count) = (csr.left_count, csr.right_count);
    let MatchScratch {
        match_left,
        match_right,
        dist,
        queue,
    } = scratch;
    match_left.clear();
    match_left.resize(left_count, NIL);
    match_right.clear();
    match_right.resize(right_count, NIL);
    dist.clear();
    dist.resize(left_count, 0);

    // Breadth-first phase of Hopcroft–Karp: layer the free left vertices.
    let bfs = |match_left: &[u32],
               match_right: &[u32],
               dist: &mut [u32],
               queue: &mut VecDeque<u32>|
     -> bool {
        queue.clear();
        for l in 0..left_count {
            if match_left[l] == NIL {
                dist[l] = 0;
                queue.push_back(l as u32);
            } else {
                dist[l] = INF;
            }
        }
        let mut found_augmenting = false;
        while let Some(l) = queue.pop_front() {
            for &r in csr.neighbors(l as usize) {
                let next = match_right[r as usize];
                if next == NIL {
                    found_augmenting = true;
                } else if dist[next as usize] == INF {
                    dist[next as usize] = dist[l as usize] + 1;
                    queue.push_back(next);
                }
            }
        }
        found_augmenting
    };

    // Depth-first phase: find augmenting paths along the BFS layering.
    fn dfs(
        l: u32,
        csr: &BipartiteCsr,
        match_left: &mut [u32],
        match_right: &mut [u32],
        dist: &mut [u32],
    ) -> bool {
        for idx in 0..csr.neighbors(l as usize).len() {
            let r = csr.neighbors(l as usize)[idx];
            let next = match_right[r as usize];
            let ok = if next == NIL {
                true
            } else if dist[next as usize] == dist[l as usize].wrapping_add(1) {
                dfs(next, csr, match_left, match_right, dist)
            } else {
                false
            };
            if ok {
                match_left[l as usize] = r;
                match_right[r as usize] = l;
                return true;
            }
        }
        dist[l as usize] = INF;
        false
    }

    while bfs(match_left, match_right, dist, queue) {
        for l in 0..left_count {
            if match_left[l] == NIL {
                dfs(l as u32, csr, match_left, match_right, dist);
            }
        }
    }

    match_left
        .iter()
        .map(|&r| if r == NIL { None } else { Some(r as usize) })
        .collect()
}

/// Computes a maximum matching in a bipartite graph (nested-vector entry
/// point, kept for callers that already hold adjacency lists).
///
/// * `left_count` — number of left vertices (logical processors).
/// * `right_count` — number of right vertices (candidate sites).
/// * `edges[l]` — the right vertices adjacent to left vertex `l`.
///
/// Returns `assignment[l] = Some(r)` for matched left vertices. The matching
/// is deterministic for a given input ordering.
pub fn maximum_bipartite_matching(
    left_count: usize,
    right_count: usize,
    edges: &[Vec<usize>],
) -> Vec<Option<usize>> {
    assert_eq!(
        edges.len(),
        left_count,
        "one adjacency list per left vertex"
    );
    // Deliberately self-contained (fresh CSR + scratch) rather than routed
    // through the thread-local workspace: this entry point must stay callable
    // from anywhere — including from inside a `with_matching_workspace`
    // closure — without re-entrant borrows. Hot paths that want the shared
    // allocation use `with_matching_workspace` + the CSR solver directly.
    let csr = BipartiteCsr::from_lists(edges, right_count);
    maximum_bipartite_matching_csr(&csr, &mut MatchScratch::default())
}

/// Size of a matching returned by [`maximum_bipartite_matching`].
pub fn matching_size(assignment: &[Option<usize>]) -> usize {
    assignment.iter().filter(|a| a.is_some()).count()
}

/// Brute-force maximum matching size (exponential; only for small instances
/// in tests).
pub fn brute_force_matching_size(
    left_count: usize,
    right_count: usize,
    edges: &[Vec<usize>],
) -> usize {
    fn go(l: usize, left_count: usize, edges: &[Vec<usize>], used_right: &mut Vec<bool>) -> usize {
        if l == left_count {
            return 0;
        }
        // Option 1: leave l unmatched.
        let mut best = go(l + 1, left_count, edges, used_right);
        // Option 2: match l with any free neighbor.
        for &r in &edges[l] {
            if !used_right[r] {
                used_right[r] = true;
                best = best.max(1 + go(l + 1, left_count, edges, used_right));
                used_right[r] = false;
            }
        }
        best
    }
    let mut used = vec![false; right_count];
    go(0, left_count, edges, &mut used)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_matching_on_identity() {
        let edges = vec![vec![0], vec![1], vec![2]];
        let m = maximum_bipartite_matching(3, 3, &edges);
        assert_eq!(m, vec![Some(0), Some(1), Some(2)]);
        assert_eq!(matching_size(&m), 3);
    }

    #[test]
    fn augmenting_path_is_found() {
        // l0 can only use r0; l1 can use r0 or r1. Greedy l1 -> r0 would block
        // l0; the maximum matching must re-route l1 to r1.
        let edges = vec![vec![0], vec![0, 1]];
        let m = maximum_bipartite_matching(2, 2, &edges);
        assert_eq!(matching_size(&m), 2);
        assert_eq!(m[0], Some(0));
        assert_eq!(m[1], Some(1));
    }

    #[test]
    fn no_edges_no_matching() {
        let edges = vec![vec![], vec![]];
        let m = maximum_bipartite_matching(2, 3, &edges);
        assert_eq!(m, vec![None, None]);
        assert_eq!(matching_size(&m), 0);
    }

    #[test]
    fn imperfect_matching_when_one_site_serves_everyone() {
        // Three logical processors but every one can only run on site 0: the
        // coupling has size 1 < |U| = 3, so the §10 validation rejects.
        let edges = vec![vec![0], vec![0], vec![0]];
        let m = maximum_bipartite_matching(3, 1, &edges);
        assert_eq!(matching_size(&m), 1);
    }

    #[test]
    fn matching_respects_adjacency() {
        let edges = vec![vec![2, 3], vec![0], vec![0, 1], vec![1, 3]];
        let m = maximum_bipartite_matching(4, 4, &edges);
        assert_eq!(matching_size(&m), 4);
        for (l, r) in m.iter().enumerate() {
            let r = r.unwrap();
            assert!(edges[l].contains(&r), "edge ({l}, {r}) does not exist");
        }
        // Distinct right vertices.
        let mut rights: Vec<usize> = m.iter().map(|r| r.unwrap()).collect();
        rights.sort_unstable();
        rights.dedup();
        assert_eq!(rights.len(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_right_vertex_panics() {
        let edges = vec![vec![5]];
        let _ = maximum_bipartite_matching(1, 2, &edges);
    }

    /// Seeded cross-check on rectangular instances (the §10 validation sees
    /// more logical processors than candidate sites and vice versa), with
    /// varying edge densities, beyond the square-ish graphs the property
    /// test samples.
    #[test]
    fn hopcroft_karp_matches_brute_force_on_rectangular_random_graphs() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(2007);
        for case in 0..300 {
            let left = rng.random_range(1usize..=9);
            let right = rng.random_range(1usize..=5);
            let density = rng.random_range(0.05f64..0.9);
            let edges: Vec<Vec<usize>> = (0..left)
                .map(|_| (0..right).filter(|_| rng.random_bool(density)).collect())
                .collect();
            let m = maximum_bipartite_matching(left, right, &edges);
            assert_eq!(
                matching_size(&m),
                brute_force_matching_size(left, right, &edges),
                "case {case}: left={left} right={right} edges={edges:?}"
            );
        }
    }

    /// The historical nested-vector Hopcroft–Karp, kept verbatim as the
    /// behavioral reference: the CSR engine must return the *same
    /// assignment* (not merely the same cardinality), which pins its edge
    /// iteration order and tie-breaking.
    fn reference_nested_vec_matching(
        left_count: usize,
        right_count: usize,
        edges: &[Vec<usize>],
    ) -> Vec<Option<usize>> {
        assert_eq!(edges.len(), left_count);
        for adj in edges {
            for &r in adj {
                assert!(r < right_count);
            }
        }
        const NIL: usize = usize::MAX;
        const INF: usize = usize::MAX;
        let mut match_left = vec![NIL; left_count];
        let mut match_right = vec![NIL; right_count];
        let mut dist = vec![0usize; left_count];
        let bfs = |match_left: &[usize], match_right: &[usize], dist: &mut [usize]| -> bool {
            let mut queue = std::collections::VecDeque::new();
            for l in 0..left_count {
                if match_left[l] == NIL {
                    dist[l] = 0;
                    queue.push_back(l);
                } else {
                    dist[l] = INF;
                }
            }
            let mut found = false;
            while let Some(l) = queue.pop_front() {
                for &r in &edges[l] {
                    let next = match_right[r];
                    if next == NIL {
                        found = true;
                    } else if dist[next] == INF {
                        dist[next] = dist[l] + 1;
                        queue.push_back(next);
                    }
                }
            }
            found
        };
        fn dfs(
            l: usize,
            edges: &[Vec<usize>],
            match_left: &mut [usize],
            match_right: &mut [usize],
            dist: &mut [usize],
        ) -> bool {
            const NIL: usize = usize::MAX;
            const INF: usize = usize::MAX;
            for idx in 0..edges[l].len() {
                let r = edges[l][idx];
                let next = match_right[r];
                let ok = if next == NIL {
                    true
                } else if dist[next] == dist[l].wrapping_add(1) {
                    dfs(next, edges, match_left, match_right, dist)
                } else {
                    false
                };
                if ok {
                    match_left[l] = r;
                    match_right[r] = l;
                    return true;
                }
            }
            dist[l] = INF;
            false
        }
        while bfs(&match_left, &match_right, &mut dist) {
            for l in 0..left_count {
                if match_left[l] == NIL {
                    dfs(l, edges, &mut match_left, &mut match_right, &mut dist);
                }
            }
        }
        match_left
            .into_iter()
            .map(|r| if r == NIL { None } else { Some(r) })
            .collect()
    }

    #[test]
    fn csr_builders_agree_and_preserve_per_left_order() {
        let lists = vec![vec![2, 0, 3], vec![], vec![1, 1, 4]];
        let from_lists = BipartiteCsr::from_lists(&lists, 5);
        assert_eq!(from_lists.left_count(), 3);
        assert_eq!(from_lists.right_count(), 5);
        assert_eq!(from_lists.edge_count(), 6);
        assert_eq!(from_lists.neighbors(0), &[2, 0, 3]);
        assert_eq!(from_lists.neighbors(1), &[] as &[u32]);
        assert_eq!(from_lists.neighbors(2), &[1, 1, 4]);
        // Pairs fed left-major in list order must rebuild the same CSR.
        let pairs: Vec<(usize, usize)> = lists
            .iter()
            .enumerate()
            .flat_map(|(l, adj)| adj.iter().map(move |&r| (l, r)))
            .collect();
        let mut from_pairs = BipartiteCsr::default();
        from_pairs.rebuild_from_pairs(3, 5, pairs.iter().copied());
        assert_eq!(from_pairs, from_lists);
        // Out-of-range pairs are dropped, not misfiled.
        let mut noisy = BipartiteCsr::default();
        let with_noise = pairs.iter().copied().chain([(9, 0), (0, 9)]);
        noisy.rebuild_from_pairs(3, 5, with_noise);
        assert_eq!(noisy, from_lists);
    }

    #[test]
    fn scratch_reuse_does_not_change_results() {
        let a = BipartiteCsr::from_lists(&[vec![0], vec![0, 1]], 2);
        let b = BipartiteCsr::from_lists(&[vec![0], vec![0], vec![0]], 1);
        let mut scratch = MatchScratch::default();
        let first = maximum_bipartite_matching_csr(&a, &mut scratch);
        let second = maximum_bipartite_matching_csr(&b, &mut scratch);
        let third = maximum_bipartite_matching_csr(&a, &mut scratch);
        assert_eq!(first, vec![Some(0), Some(1)]);
        assert_eq!(matching_size(&second), 1);
        assert_eq!(first, third);
    }

    /// Seeded equivalence sweep on rectangular graphs: the CSR engine must
    /// reproduce the nested-vector reference assignment exactly.
    #[test]
    fn csr_engine_equals_nested_vec_reference_on_random_rectangles() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(510);
        let mut scratch = MatchScratch::default();
        for case in 0..400 {
            let left = rng.random_range(1usize..=12);
            let right = rng.random_range(1usize..=12);
            let density = rng.random_range(0.05f64..0.95);
            let edges: Vec<Vec<usize>> = (0..left)
                .map(|_| (0..right).filter(|_| rng.random_bool(density)).collect())
                .collect();
            let reference = reference_nested_vec_matching(left, right, &edges);
            let csr = BipartiteCsr::from_lists(&edges, right);
            let got = maximum_bipartite_matching_csr(&csr, &mut scratch);
            assert_eq!(got, reference, "case {case}: {edges:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The CSR engine (through the public wrapper) returns exactly the
        /// reference assignment — the permutation the §11 dispatch ships is
        /// unchanged by the layout swap.
        #[test]
        fn csr_engine_equals_nested_vec_reference(
            left in 1usize..8,
            right in 1usize..8,
            edge_bits in proptest::collection::vec(proptest::bool::ANY, 64),
        ) {
            let edges: Vec<Vec<usize>> = (0..left)
                .map(|l| (0..right).filter(|r| edge_bits[l * 8 + r]).collect())
                .collect();
            let reference = reference_nested_vec_matching(left, right, &edges);
            let got = maximum_bipartite_matching(left, right, &edges);
            prop_assert_eq!(got, reference);
        }

        /// Hopcroft–Karp matches the brute-force optimum on random small
        /// bipartite graphs, and the returned assignment is a valid matching.
        #[test]
        fn hopcroft_karp_is_maximum(
            left in 1usize..7,
            right in 1usize..7,
            edge_bits in proptest::collection::vec(proptest::bool::ANY, 49),
        ) {
            let edges: Vec<Vec<usize>> = (0..left)
                .map(|l| (0..right).filter(|r| edge_bits[l * 7 + r]).collect())
                .collect();
            let m = maximum_bipartite_matching(left, right, &edges);
            // Validity: matched pairs are edges, rights are distinct.
            let mut seen = std::collections::HashSet::new();
            for (l, r) in m.iter().enumerate() {
                if let Some(r) = r {
                    prop_assert!(edges[l].contains(r));
                    prop_assert!(seen.insert(*r));
                }
            }
            // Optimality.
            let best = brute_force_matching_size(left, right, &edges);
            prop_assert_eq!(matching_size(&m), best);
        }
    }
}
