//! The `exp_perf` fixed performance suite — the recorded perf trajectory.
//!
//! Every PR extends `BENCH_<n>.json`: a deterministic-schema report over a
//! fixed set of seeded workloads. The suite is the paper-baseline registry
//! scenario (its native 25-site grid) plus three registry scenarios
//! re-scaled to 16, 64 and 256 sites:
//!
//! * `paper-baseline` — the 5×5 evaluation grid with Poisson hotspots,
//! * `paper-baseline/N` — the same recipe on 4×4 / 8×8 / 16×16 grids,
//! * `wide-low-degree/N` — a random spanning tree (every link a bridge,
//!   sphere radius 3 — the routing exchange runs six phases),
//! * `hetero-speed-sites/N` — a connected Erdős–Rényi graph with ~3 average
//!   degree and a 6× speed spread under the §13 uniform-machines extension.
//!
//! Each workload is one fully deterministic single-threaded simulation; the
//! only nondeterministic fields of the report are the timings (`wall_ms`,
//! `events_per_sec`). Everything else — event counts, message counts,
//! acceptance outcomes — is a pure function of the seed, which is what the
//! determinism suite pins (two `exp_perf --seed 7` runs must agree on every
//! non-timing field).

use rtds_core::{JobOutcomeKind, RtdsSystem};
use rtds_scenarios::{find_scenario, mix_seed, Json, Scenario, TopologyRecipe};
use rtds_sim::metrics_json::metrics_to_json;
use rtds_sim::MetricsRegistry;
use std::time::{Duration, Instant};

/// Identifier of the report schema (bump on breaking field changes).
/// Version 2 added the deterministic per-workload `metrics` section
/// (latency/laxity histogram summaries, protocol counters).
pub const PERF_SCHEMA: &str = "rtds-exp-perf/2";

/// The previous schema (no `metrics` sections). `--baseline` still accepts
/// v1 recordings by comparing only the fields both schemas share.
pub const PERF_SCHEMA_V1: &str = "rtds-exp-perf/1";

/// The site-count tiers of the scaled scenarios.
pub const PERF_TIERS: [usize; 3] = [16, 64, 256];

/// One workload of the fixed suite: a scenario pinned to a size tier.
#[derive(Debug, Clone)]
pub struct PerfWorkload {
    /// Report name (`scenario` or `scenario/sites`).
    pub name: String,
    /// Scenario to run.
    pub scenario: Scenario,
    /// Size tier the workload belongs to (0 for the native paper baseline).
    pub tier: usize,
}

/// Re-scales a registry scenario to a site-count tier.
///
/// # Panics
/// Panics on an unknown scenario name or a tier that is not a square for
/// grid-based scenarios.
pub fn scaled_scenario(name: &str, sites: usize) -> Scenario {
    let mut scenario =
        find_scenario(name).unwrap_or_else(|| panic!("unknown registry scenario {name:?}"));
    scenario.topology.recipe = match scenario.topology.recipe {
        TopologyRecipe::Grid { wrap, .. } => {
            let side = (sites as f64).sqrt().round() as usize;
            assert_eq!(side * side, sites, "grid tier {sites} is not a square");
            TopologyRecipe::Grid {
                width: side,
                height: side,
                wrap,
            }
        }
        TopologyRecipe::RandomTree { .. } => TopologyRecipe::RandomTree { sites },
        TopologyRecipe::ErdosRenyi { .. } => TopologyRecipe::ErdosRenyi {
            sites,
            // Keep the average degree near 3 at every tier so the tiers
            // stress network size, not density.
            edge_prob: 3.0 / (sites as f64 - 1.0),
        },
        other => panic!("scenario {name:?} has an unscalable topology {other:?}"),
    };
    scenario.name = format!("{name}/{sites}");
    scenario
}

/// The fixed suite, in run order. `smoke` keeps only the native paper
/// baseline and the smallest tier (the CI smoke configuration).
pub fn perf_suite(smoke: bool) -> Vec<PerfWorkload> {
    let mut suite = vec![PerfWorkload {
        name: "paper-baseline".into(),
        scenario: find_scenario("paper-baseline").expect("registry scenario"),
        tier: 0,
    }];
    let tiers: &[usize] = if smoke {
        &PERF_TIERS[..1]
    } else {
        &PERF_TIERS[..]
    };
    for scenario in ["paper-baseline", "wide-low-degree", "hetero-speed-sites"] {
        for &sites in tiers {
            let scaled = scaled_scenario(scenario, sites);
            suite.push(PerfWorkload {
                name: scaled.name.clone(),
                scenario: scaled,
                tier: sites,
            });
        }
    }
    suite
}

/// Result of one workload: deterministic metrics plus the wall-clock timing.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// Workload name.
    pub name: String,
    /// Size tier (0 for the native paper baseline).
    pub tier: usize,
    /// Sites of the instantiated network.
    pub sites: usize,
    /// Links of the instantiated network.
    pub links: usize,
    /// Jobs submitted.
    pub submitted: u64,
    /// Jobs accepted by their arrival site.
    pub accepted_locally: u64,
    /// Jobs accepted after distribution.
    pub accepted_distributed: u64,
    /// Jobs rejected.
    pub rejected: u64,
    /// Accepted jobs that missed their deadline (must stay zero).
    pub deadline_misses: u64,
    /// Guarantee ratio.
    pub guarantee_ratio: f64,
    /// Engine-level messages handed in for delivery.
    pub messages_sent: u64,
    /// Engine-level messages delivered.
    pub messages_delivered: u64,
    /// Distribution messages per submitted job.
    pub messages_per_job: f64,
    /// Events processed by the engine.
    pub events_processed: u64,
    /// Final simulated time.
    pub finished_at: f64,
    /// Full telemetry of the run (histograms, counters); every summary in
    /// the report's `metrics` section is deterministic.
    pub metrics: MetricsRegistry,
    /// Wall-clock time of the simulation run (nondeterministic).
    pub wall: Duration,
}

impl WorkloadResult {
    /// Events per wall-clock second (nondeterministic).
    pub fn events_per_sec(&self) -> f64 {
        self.events_processed as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    fn to_json(&self, timings: bool) -> Json {
        let timing = |v: f64| if timings { Json::Num(v) } else { Json::Null };
        Json::object(vec![
            ("name", Json::str(&self.name)),
            ("tier", Json::UInt(self.tier as u64)),
            ("sites", Json::UInt(self.sites as u64)),
            ("links", Json::UInt(self.links as u64)),
            ("submitted", Json::UInt(self.submitted)),
            ("accepted_locally", Json::UInt(self.accepted_locally)),
            (
                "accepted_distributed",
                Json::UInt(self.accepted_distributed),
            ),
            ("rejected", Json::UInt(self.rejected)),
            ("deadline_misses", Json::UInt(self.deadline_misses)),
            ("guarantee_ratio", Json::Num(self.guarantee_ratio)),
            ("messages_sent", Json::UInt(self.messages_sent)),
            ("messages_delivered", Json::UInt(self.messages_delivered)),
            ("messages_per_job", Json::Num(self.messages_per_job)),
            ("events_processed", Json::UInt(self.events_processed)),
            ("finished_at", Json::Num(self.finished_at)),
            // Full scope detail: phase-labelled routing fan-out summaries
            // render individually. Deterministic, unlike the two timing
            // fields below.
            ("metrics", metrics_to_json(&self.metrics, true)),
            ("wall_ms", timing(self.wall.as_secs_f64() * 1e3)),
            ("events_per_sec", timing(self.events_per_sec())),
        ])
    }
}

/// The aggregate report of one `exp_perf` run.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Suite seed.
    pub seed: u64,
    /// Whether the smoke subset ran.
    pub smoke: bool,
    /// One result per workload, in suite order.
    pub workloads: Vec<WorkloadResult>,
}

impl PerfReport {
    /// Aggregate events/sec of one size tier (nondeterministic).
    pub fn tier_events_per_sec(&self, tier: usize) -> f64 {
        let (events, wall) = self
            .workloads
            .iter()
            .filter(|w| w.tier == tier)
            .fold((0u64, 0.0f64), |(e, s), w| {
                (e + w.events_processed, s + w.wall.as_secs_f64())
            });
        events as f64 / wall.max(1e-9)
    }

    /// Renders the report. With `timings: false` every nondeterministic
    /// field renders as `null` — the canonical form the determinism suite
    /// compares.
    pub fn to_json(&self, timings: bool) -> String {
        let timing = |v: f64| if timings { Json::Num(v) } else { Json::Null };
        let total_events: u64 = self.workloads.iter().map(|w| w.events_processed).sum();
        let total_wall: f64 = self.workloads.iter().map(|w| w.wall.as_secs_f64()).sum();
        let mut tiers = Vec::new();
        for &tier in PERF_TIERS.iter() {
            if self.workloads.iter().any(|w| w.tier == tier) {
                let events: u64 = self
                    .workloads
                    .iter()
                    .filter(|w| w.tier == tier)
                    .map(|w| w.events_processed)
                    .sum();
                tiers.push(Json::object(vec![
                    ("sites", Json::UInt(tier as u64)),
                    ("events_processed", Json::UInt(events)),
                    ("events_per_sec", timing(self.tier_events_per_sec(tier))),
                ]));
            }
        }
        Json::object(vec![
            ("schema", Json::str(PERF_SCHEMA)),
            ("seed", Json::UInt(self.seed)),
            ("smoke", Json::Bool(self.smoke)),
            (
                "workloads",
                Json::Array(self.workloads.iter().map(|w| w.to_json(timings)).collect()),
            ),
            ("tiers", Json::Array(tiers)),
            (
                "totals",
                Json::object(vec![
                    ("events_processed", Json::UInt(total_events)),
                    ("wall_ms", timing(total_wall * 1e3)),
                    (
                        "events_per_sec",
                        timing(total_events as f64 / total_wall.max(1e-9)),
                    ),
                ]),
            ),
        ])
        .render()
    }
}

/// Recursively nulls every nondeterministic timing field (`wall_ms`,
/// `events_per_sec`) of a parsed report, producing the canonical form that
/// [`PerfReport::to_json`] emits with `timings: false`.
pub fn null_timings(json: &mut Json) {
    match json {
        Json::Object(fields) => {
            for (key, value) in fields {
                if key == "wall_ms" || key == "events_per_sec" {
                    *value = Json::Null;
                } else {
                    null_timings(value);
                }
            }
        }
        Json::Array(items) => {
            for item in items {
                null_timings(item);
            }
        }
        _ => {}
    }
}

/// Result of diffing a run against a recorded `BENCH_<n>.json` baseline.
#[derive(Debug, Clone)]
pub struct BaselineComparison {
    /// Line-level differences between the canonical (timings-nulled)
    /// renderings, capped at a handful for readability. Empty = the
    /// deterministic fields match byte-for-byte.
    pub mismatches: Vec<String>,
    /// The baseline's recorded aggregate events/sec, if present.
    pub baseline_events_per_sec: Option<f64>,
    /// This run's aggregate events/sec.
    pub current_events_per_sec: f64,
}

impl BaselineComparison {
    /// Whether the deterministic report fields diverged.
    pub fn fields_match(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// Whether throughput regressed by more than `tolerance` (e.g. `0.2`
    /// = 20 %) against the baseline's recorded events/sec. Wall-clock
    /// numbers are machine-dependent, so this is a tripwire, not a
    /// deterministic check.
    pub fn regressed(&self, tolerance: f64) -> bool {
        match self.baseline_events_per_sec {
            Some(base) if base > 0.0 => self.current_events_per_sec < (1.0 - tolerance) * base,
            _ => false,
        }
    }
}

/// Recursively removes every `metrics` section from a parsed report,
/// producing the field set a v1 (`rtds-exp-perf/1`) recording carries —
/// the shared shape `--baseline` compares across schema versions.
pub fn strip_metrics(json: &mut Json) {
    match json {
        Json::Object(fields) => {
            fields.retain(|(key, _)| key != "metrics");
            for (_, value) in fields {
                strip_metrics(value);
            }
        }
        Json::Array(items) => {
            for item in items {
                strip_metrics(item);
            }
        }
        _ => {}
    }
}

/// Projects a parsed v2 report onto the v1 field set: drops the `metrics`
/// sections and retags the schema, leaving every field a v1 recording
/// pinned byte-identical. The single definition of the cross-schema
/// comparison rule.
pub fn project_to_v1(json: &mut Json) {
    strip_metrics(json);
    if let Json::Object(fields) = json {
        for (key, value) in fields.iter_mut() {
            if key == "schema" {
                *value = Json::str(PERF_SCHEMA_V1);
            }
        }
    }
}

/// Diffs this run against a previously recorded report (`--baseline`): the
/// deterministic fields must match byte-for-byte after nulling timings, and
/// the recorded aggregate events/sec is surfaced for the regression
/// tripwire. A v1 baseline (recorded before the `metrics` sections existed)
/// is compared on the fields both schemas share. Fails if the baseline is
/// not valid JSON of a known schema.
pub fn compare_with_baseline(
    current: &PerfReport,
    baseline_text: &str,
) -> Result<BaselineComparison, String> {
    let mut baseline =
        Json::parse(baseline_text).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
    let schema = baseline.get("schema").and_then(Json::as_str);
    let v1_baseline = match schema {
        Some(PERF_SCHEMA) => false,
        Some(PERF_SCHEMA_V1) => true,
        _ => {
            return Err(format!(
                "baseline schema {schema:?} is neither {PERF_SCHEMA:?} nor {PERF_SCHEMA_V1:?}"
            ))
        }
    };
    let baseline_events_per_sec = baseline
        .get("totals")
        .and_then(|t| t.get("events_per_sec"))
        .and_then(Json::as_f64);
    null_timings(&mut baseline);
    let canonical_baseline = baseline.render();
    let canonical_current = if v1_baseline {
        let mut projected = Json::parse(&current.to_json(false)).expect("our own rendering parses");
        project_to_v1(&mut projected);
        projected.render()
    } else {
        current.to_json(false)
    };
    let mut mismatches = Vec::new();
    if canonical_baseline != canonical_current {
        let old: Vec<&str> = canonical_baseline.lines().collect();
        let new: Vec<&str> = canonical_current.lines().collect();
        for i in 0..old.len().max(new.len()) {
            let a = old.get(i).copied().unwrap_or("<missing>");
            let b = new.get(i).copied().unwrap_or("<missing>");
            if a != b {
                mismatches.push(format!("line {}: baseline {a:?} vs current {b:?}", i + 1));
                if mismatches.len() >= 8 {
                    mismatches.push("...".to_string());
                    break;
                }
            }
        }
        if mismatches.is_empty() {
            // Same lines, different layout (should not happen with the
            // deterministic renderer) — still a mismatch.
            mismatches.push("renderings differ".to_string());
        }
    }
    let total_events: u64 = current.workloads.iter().map(|w| w.events_processed).sum();
    let total_wall: f64 = current.workloads.iter().map(|w| w.wall.as_secs_f64()).sum();
    Ok(BaselineComparison {
        mismatches,
        baseline_events_per_sec,
        current_events_per_sec: total_events as f64 / total_wall.max(1e-9),
    })
}

/// Runs one workload: instantiates the scenario for the seed, times the
/// simulation run (network/workload construction is excluded from the
/// timing) and extracts the deterministic metrics.
pub fn run_workload(workload: &PerfWorkload, seed: u64) -> WorkloadResult {
    let scenario = &workload.scenario;
    let network = scenario.build_network(seed);
    let sites = network.site_count();
    let links = network.link_count();
    let jobs = scenario.build_workload(&network, seed);
    let faults = scenario.perturbations.expand(&network, mix_seed(seed, 3));
    let mut system = RtdsSystem::new(network, scenario.config, mix_seed(seed, 5));
    system.set_fault_seed(mix_seed(seed, 4));
    system.set_max_events(scenario.max_events);
    for (time, fault) in faults {
        system.schedule_fault(time.max(0.0), fault);
    }
    system.submit_workload(jobs);
    let start = Instant::now();
    let report = system.run();
    let wall = start.elapsed();
    let rejected = report.jobs_submitted
        - report.guarantee.accepted_locally
        - report.guarantee.accepted_distributed;
    debug_assert!(report
        .jobs
        .iter()
        .all(|j| j.outcome != JobOutcomeKind::Rejected || j.completion.is_none()));
    WorkloadResult {
        name: workload.name.clone(),
        tier: workload.tier,
        sites,
        links,
        submitted: report.jobs_submitted,
        accepted_locally: report.guarantee.accepted_locally,
        accepted_distributed: report.guarantee.accepted_distributed,
        rejected,
        deadline_misses: report.deadline_misses(),
        guarantee_ratio: report.guarantee_ratio(),
        messages_sent: report.stats.messages_sent,
        messages_delivered: report.stats.messages_delivered,
        messages_per_job: report.messages_per_job,
        events_processed: system.events_processed(),
        finished_at: report.finished_at,
        metrics: report.metrics,
        wall,
    }
}

/// Runs the full (or smoke) suite for one seed.
pub fn run_perf_suite(seed: u64, smoke: bool) -> PerfReport {
    let workloads = perf_suite(smoke)
        .iter()
        .map(|w| run_workload(w, seed))
        .collect();
    PerfReport {
        seed,
        smoke,
        workloads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_shape_is_fixed() {
        let full = perf_suite(false);
        assert_eq!(full.len(), 1 + 3 * PERF_TIERS.len());
        let smoke = perf_suite(true);
        assert_eq!(smoke.len(), 4);
        assert!(smoke.iter().all(|w| w.tier <= 16));
        // Names are unique.
        let mut names: Vec<&str> = full.iter().map(|w| w.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), full.len());
    }

    #[test]
    fn scaled_scenarios_hit_their_tier_exactly() {
        for name in ["paper-baseline", "wide-low-degree", "hetero-speed-sites"] {
            for &sites in &PERF_TIERS {
                let scenario = scaled_scenario(name, sites);
                let net = scenario.build_network(7);
                assert_eq!(net.site_count(), sites, "{name}/{sites}");
                assert!(net.is_connected(), "{name}/{sites}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown registry scenario")]
    fn scaling_an_unknown_scenario_panics() {
        let _ = scaled_scenario("no-such-scenario", 16);
    }

    #[test]
    fn baseline_comparison_accepts_self_and_flags_differences() {
        let report = run_perf_suite(7, true);
        // A report always matches its own recording (timings and all).
        let cmp = compare_with_baseline(&report, &report.to_json(true)).unwrap();
        assert!(cmp.fields_match(), "{:?}", cmp.mismatches);
        assert!(cmp.baseline_events_per_sec.is_some());
        assert!(!cmp.regressed(0.2));
        // A doctored deterministic field is caught with a line diff.
        let tampered = report.to_json(true).replace("\"seed\": 7", "\"seed\": 8");
        let cmp = compare_with_baseline(&report, &tampered).unwrap();
        assert!(!cmp.fields_match());
        assert!(cmp.mismatches[0].contains("seed"), "{:?}", cmp.mismatches);
        // A sky-high recorded throughput trips the regression wire.
        let mut inflated = cmp;
        inflated.baseline_events_per_sec = Some(inflated.current_events_per_sec * 100.0);
        assert!(inflated.regressed(0.2));
        // Garbage and wrong-schema baselines are rejected.
        assert!(compare_with_baseline(&report, "not json").is_err());
        assert!(compare_with_baseline(&report, "{\"schema\": \"other/1\"}\n").is_err());
    }

    #[test]
    fn v1_baselines_compare_on_the_shared_field_set() {
        let report = run_perf_suite(7, true);
        // Fabricate the v1 recording of this exact run: same fields minus
        // the metrics sections, tagged with the old schema id.
        let mut v1 = Json::parse(&report.to_json(true)).unwrap();
        project_to_v1(&mut v1);
        let cmp = compare_with_baseline(&report, &v1.render()).unwrap();
        assert!(cmp.fields_match(), "{:?}", cmp.mismatches);
        assert!(cmp.baseline_events_per_sec.is_some());
        // A doctored shared field still trips the diff.
        let tampered = v1
            .render()
            .replace("\"deadline_misses\": 0", "\"deadline_misses\": 1");
        let cmp = compare_with_baseline(&report, &tampered).unwrap();
        assert!(!cmp.fields_match());
    }

    #[test]
    fn smoke_suite_runs_and_non_timing_fields_are_deterministic() {
        let a = run_perf_suite(7, true);
        let b = run_perf_suite(7, true);
        assert_eq!(a.to_json(false), b.to_json(false));
        assert_ne!(a.to_json(false), a.to_json(true));
        for w in &a.workloads {
            assert_eq!(w.deadline_misses, 0, "{}", w.name);
            assert!(w.events_processed > 0, "{}", w.name);
            assert!(w.events_per_sec() > 0.0, "{}", w.name);
        }
        // The canonical form nulls every timing field.
        let canonical = a.to_json(false);
        assert!(!canonical.contains("\"wall_ms\": 0."));
        assert!(canonical.contains("\"wall_ms\": null"));
    }
}
