//! Regenerates Fig. 2 (task graph), Fig. 3 (schedule S), Fig. 4 (schedule S*)
//! and Table 1 (adjusted releases/deadlines) of the paper, and checks every
//! value against the published numbers.
//!
//! Run with: `cargo run -p rtds-bench --bin exp_table1_example`
//! (`--seed` is accepted for interface uniformity but unused — the paper
//! instance is fixed; `--json <path>` dumps the makespans and Table 1).

use rtds_bench::ExpArgs;
use rtds_core::analysis::{render_gantt, render_table1};
use rtds_core::{
    adjust_mapping, gantt_rows, map_dag, table1_rows, LaxityDispatch, MapperInput, ProcessorSpec,
};
use rtds_graph::paper_instance::*;
use rtds_scenarios::Json;

fn main() {
    let args = ExpArgs::parse(&[], &[]);
    let _ = args.seed(0); // fixed paper instance: the seed changes nothing
    let graph = paper_task_graph();
    println!("== Fig. 2: example task graph (reconstructed) ==");
    for t in graph.task_ids() {
        let succs: Vec<String> = graph
            .successors(t)
            .map(|s| format!("t{}", s.0 + 1))
            .collect();
        println!(
            "t{}: c = {:>4.1}  successors: {}",
            t.0 + 1,
            graph.cost(t),
            succs.join(" ")
        );
    }

    let processors = vec![
        ProcessorSpec::with_surplus(PAPER_SURPLUS_P1),
        ProcessorSpec::with_surplus(PAPER_SURPLUS_P2),
    ];
    let input = MapperInput::new(&graph, PAPER_RELEASE, &processors, PAPER_ACS_DIAMETER);
    let result = map_dag(&input).expect("paper instance maps");

    println!();
    println!("== Fig. 3: schedule S (I1 = 0.5, I2 = 0.4, omega = 3) ==");
    print!("{}", render_gantt(&gantt_rows(&result, false)));
    println!(
        "makespan M  = {}   (paper: {})",
        result.makespan, EXPECTED_MAKESPAN_S
    );

    println!();
    println!("== Fig. 4: schedule S* (surpluses = 100 %) ==");
    print!("{}", render_gantt(&gantt_rows(&result, true)));
    println!(
        "makespan M* = {}   (paper: {})",
        result.makespan_star, EXPECTED_MAKESPAN_S_STAR
    );

    let adjusted = adjust_mapping(
        &graph,
        &result,
        PAPER_RELEASE,
        PAPER_DEADLINE,
        &processors,
        LaxityDispatch::Uniform,
    );
    let rows = table1_rows(&graph, &result, &adjusted).expect("case (ii)");
    println!();
    println!(
        "== Table 1: adjusted r(ti), d(ti)  (d = {}, scaling factor (d-r)/M = {}) ==",
        PAPER_DEADLINE,
        (PAPER_DEADLINE - PAPER_RELEASE) / result.makespan
    );
    print!("{}", render_table1(&rows));

    let mut mismatches = 0;
    for (task, ri, di, r_adj, d_adj) in EXPECTED_TABLE1 {
        let row = rows.iter().find(|r| r.task == task).unwrap();
        for (name, got, want) in [
            ("ri", row.r_raw, ri),
            ("di", row.d_raw, di),
            ("r(ti)", row.r_adjusted, r_adj),
            ("d(ti)", row.d_adjusted, d_adj),
        ] {
            if (got - want).abs() > 1e-9 {
                mismatches += 1;
                println!("MISMATCH t{}: {name} = {got} (paper: {want})", task + 1);
            }
        }
    }
    args.write_json(&Json::object(vec![
        ("experiment", Json::str("table1_example")),
        ("makespan", Json::Num(result.makespan)),
        ("makespan_star", Json::Num(result.makespan_star)),
        ("mismatches", Json::UInt(mismatches)),
        (
            "table1",
            Json::Array(
                rows.iter()
                    .map(|r| {
                        Json::object(vec![
                            ("task", Json::UInt(r.task as u64)),
                            ("r_raw", Json::Num(r.r_raw)),
                            ("d_raw", Json::Num(r.d_raw)),
                            ("r_adjusted", Json::Num(r.r_adjusted)),
                            ("d_adjusted", Json::Num(r.d_adjusted)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]));

    println!();
    if mismatches == 0 {
        println!(
            "RESULT: all {} values of Table 1 (plus M and M*) match the paper exactly.",
            EXPECTED_TABLE1.len() * 4
        );
    } else {
        println!("RESULT: {mismatches} mismatches against the paper.");
        std::process::exit(1);
    }
}
