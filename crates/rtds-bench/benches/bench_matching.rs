//! Criterion bench: Hopcroft–Karp maximum matching (the §10 coupling) as a
//! function of the ACS size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use rand::rngs::StdRng;
use rtds_core::maximum_bipartite_matching;
use std::hint::black_box;

fn random_bipartite(left: usize, right: usize, p: f64, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..left)
        .map(|_| (0..right).filter(|_| rng.random_bool(p)).collect())
        .collect()
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    for &n in &[8usize, 32, 128, 512] {
        let edges = random_bipartite(n, n, 0.2, 3);
        group.bench_with_input(BenchmarkId::new("hopcroft_karp", n), &edges, |b, edges| {
            b.iter(|| black_box(maximum_bipartite_matching(n, n, edges)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
