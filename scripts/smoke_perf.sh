#!/usr/bin/env bash
# Perf smoke: two exp_perf runs of the smallest tier must agree on every
# deterministic field (everything except wall_ms / events_per_sec), now
# including the per-workload metrics sections (latency/laxity histogram
# summaries). Used by CI and runnable locally from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${SMOKE_OUT_DIR:-.}"
cargo run --release --bin exp_perf -- --seed 7 --smoke --json "$out/perf-smoke.json"
cargo run --release --bin exp_perf -- --seed 7 --smoke --json "$out/perf-smoke-b.json"
grep -v -E 'wall_ms|events_per_sec' "$out/perf-smoke.json" > "$out/perf-smoke.det"
grep -v -E 'wall_ms|events_per_sec' "$out/perf-smoke-b.json" > "$out/perf-smoke-b.det"
cmp "$out/perf-smoke.det" "$out/perf-smoke-b.det"
# The v4 schema must actually carry the histogram summaries and the flows
# section, and without --soak the soak section renders as null.
grep -q '"schema": "rtds-exp-perf/4"' "$out/perf-smoke.json"
grep -q '"accept_latency": {' "$out/perf-smoke.json"
grep -q '"accept_laxity": {' "$out/perf-smoke.json"
grep -q '"flows": \[' "$out/perf-smoke.json"
grep -q '"soak": null' "$out/perf-smoke.json"

# Streaming soak smoke at a reduced budget: an uninterrupted run, a run
# through a checkpoint → write → resume cycle, and a standalone --resume
# from the written snapshot must all agree on every deterministic soak
# field. (checkpointed / requested_events record the path taken and
# peak_rss_kb is machine state, so those are stripped along with timings.)
soak_det='wall_ms|events_per_sec|peak_rss_kb|checkpointed|requested_events'
cargo run --release --bin exp_perf -- --seed 7 --smoke --soak 20000 \
  --json "$out/perf-soak-plain.json"
cargo run --release --bin exp_perf -- --seed 7 --smoke --soak 20000 \
  --checkpoint "$out/perf-soak.snapshot.json" --json "$out/perf-soak-ckpt.json"
cargo run --release --bin exp_perf -- --seed 7 --smoke \
  --resume "$out/perf-soak.snapshot.json" --json "$out/perf-soak-resume.json"
grep -q '"schema": "rtds-stream-snapshot/1"' "$out/perf-soak.snapshot.json"
for r in plain ckpt resume; do
  grep -v -E "$soak_det" "$out/perf-soak-$r.json" > "$out/perf-soak-$r.det"
done
cmp "$out/perf-soak-plain.det" "$out/perf-soak-ckpt.det"
cmp "$out/perf-soak-plain.det" "$out/perf-soak-resume.det"
echo "perf smoke OK: deterministic fields (incl. metrics) are byte-identical"
echo "soak smoke OK: checkpoint -> resume reproduces the uninterrupted run"
