//! Offline stub for `proptest`.
//!
//! The build environment has no crates.io access, so this crate reimplements
//! the subset of the proptest API the RTDS test suites use: the `proptest!`
//! macro, `Strategy` with `prop_map`, range/tuple/`Just` strategies,
//! `prop_oneof!`, `proptest::collection::vec`, `proptest::bool::ANY`,
//! `ProptestConfig::with_cases` and the `prop_assert*` macros.
//!
//! Semantics versus the real crate:
//!
//! * Cases are sampled from a [`rand`] `StdRng` seeded from the test
//!   function's name, so every run explores the same deterministic sequence
//!   of inputs (the real proptest randomizes and persists regressions).
//! * There is **no shrinking**. On failure the offending case is printed in
//!   full via a drop guard instead.
//! * `prop_assert!`/`prop_assert_eq!` panic immediately rather than
//!   returning `TestCaseError`.

pub mod bool;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

#[doc(hidden)]
pub use ::rand as __rand;

/// Defines deterministic property tests. Mirrors proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u64..100, v in proptest::collection::vec(0.0f64..1.0, 0..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                        $crate::test_runner::name_seed(stringify!($name)),
                    );
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                    let __guard = $crate::test_runner::PanicGuard::new(
                        stringify!($name),
                        __case,
                        format!(concat!("" $(, stringify!($arg), " = {:?}; ")*) $(, &$arg)*),
                    );
                    { $body }
                    drop(__guard);
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice between heterogeneous strategies producing the same value
/// type. Weighted variants (`w => strat`) are not supported by this stub.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Property assertion; panics immediately (no shrinking in this stub).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Property equality assertion; panics immediately (no shrinking in this stub).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Property inequality assertion; panics immediately (no shrinking in this stub).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}
