//! E3 — the sphere-radius trade-off: a larger `h` enrols more sites (better
//! acceptance) but costs more messages per job and a longer PCS construction.
//!
//! Run with: `cargo run --release -p rtds-bench --bin exp_sphere_radius`
//! (`--seed <u64>` defaults to 19, `--json <path>` dumps the table).

use rtds_bench::{parallel_sweep, workload, ExpArgs, WorkloadSpec};
use rtds_core::{RtdsConfig, RtdsSystem};
use rtds_net::generators::{grid, DelayDistribution};
use rtds_scenarios::Json;

fn main() {
    let args = ExpArgs::parse(&[], &[]);
    let seed = args.seed(19);
    let network = grid(6, 6, false, DelayDistribution::Constant(1.0), 1);
    let jobs = workload(
        &network,
        WorkloadSpec {
            rate: 0.05,
            horizon: 250.0,
            hotspots: 3,
            seed,
            tasks_per_job: 8,
            ..WorkloadSpec::default()
        },
    );
    println!(
        "== E3: sphere radius h sweep (36-site grid, 3 hotspots, {} jobs) ==",
        jobs.len()
    );
    println!();
    println!(
        "{:>3} | {:>9} {:>9} {:>8} | {:>12} {:>14} {:>14}",
        "h", "accepted", "rejected", "ratio", "msgs/job", "routing msgs", "mean ACS size"
    );
    let radii = vec![1usize, 2, 3, 4, 5];
    let net = network.clone();
    let jobs_ref = jobs.clone();
    let rows = parallel_sweep(radii, move |h| {
        let config = RtdsConfig {
            sphere_radius: h,
            ..RtdsConfig::default()
        };
        let mut system = RtdsSystem::new(net.clone(), config, 2);
        system.submit_workload(jobs_ref.clone());
        let report = system.run();
        (h, report)
    });
    let mut json_rows = Vec::new();
    for (h, report) in rows {
        let distributions = report.stats.named("acs_members");
        let attempts = (report.stats.named("accepted_distributed")
            + report.stats.named("rejected_distributed"))
        .max(1);
        let mean_acs = distributions as f64 / attempts as f64;
        println!(
            "{:>3} | {:>9} {:>9} {:>8.3} | {:>12.1} {:>14} {:>14.1}",
            h,
            report.guarantee.accepted(),
            report.guarantee.rejected,
            report.guarantee_ratio(),
            report.messages_per_job,
            report.stats.named("routing_update"),
            mean_acs,
        );
        assert_eq!(report.deadline_misses(), 0);
        json_rows.push(Json::object(vec![
            ("h", Json::UInt(h as u64)),
            ("accepted", Json::UInt(report.guarantee.accepted())),
            ("rejected", Json::UInt(report.guarantee.rejected)),
            ("ratio", Json::Num(report.guarantee_ratio())),
            ("messages_per_job", Json::Num(report.messages_per_job)),
            (
                "routing_messages",
                Json::UInt(report.stats.named("routing_update")),
            ),
            ("mean_acs_size", Json::Num(mean_acs)),
        ]));
    }
    args.write_json(&Json::object(vec![
        ("experiment", Json::str("sphere_radius")),
        ("seed", Json::UInt(seed)),
        ("rows", Json::Array(json_rows)),
    ]));
    println!();
    println!("Expected shape: acceptance rises quickly from h = 1 and saturates once the");
    println!("sphere covers enough idle capacity; message cost per job and the one-time");
    println!("routing traffic keep growing with h — the trade-off the paper's bounded");
    println!("Computing Sphere is designed around.");
}
