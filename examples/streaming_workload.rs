//! Streaming open-loop workload with trace record/replay.
//!
//! Streams a diurnal arrival wave through a grid with the bounded-memory
//! execution path (jobs are pulled on demand, per-job state is released as
//! deadlines pass), records every arrival into an in-memory JSONL trace,
//! replays the trace, and checks the replay reproduces the live run
//! exactly.
//!
//! Run with: `cargo run --release --example streaming_workload`

use rtds::core::{RtdsConfig, RtdsSystem, StreamOptions, StreamReport};
use rtds::net::generators::{grid, DelayDistribution};
use rtds::sim::json::Json;
use rtds::workload::{
    reader_from_string, record_to_string, JobFactory, JobTemplate, OpenLoopSpec, RateProcess,
    SizeMix, WorkloadSource,
};

fn stream(workload: impl WorkloadSource) -> StreamReport {
    let network = grid(4, 4, false, DelayDistribution::Constant(1.0), 11);
    let mut system = RtdsSystem::new(network, RtdsConfig::default(), 11);
    let mut jobs = JobFactory::new(workload, JobTemplate::default());
    system.run_streaming(&mut jobs, &StreamOptions::default())
}

fn main() {
    let spec = OpenLoopSpec {
        process: RateProcess::Diurnal {
            base: 0.1,
            peak: 1.2,
            period: 240.0,
        },
        sizes: SizeMix::Pareto {
            alpha: 1.7,
            min: 4,
            cap: 32,
        },
        hotspots: 0,
        horizon: 720.0, // three days
        max_jobs: 0,
    };

    // Record the arrival stream into an in-memory JSONL trace, then run the
    // identical live stream (same spec, same seed → same arrivals).
    let trace = record_to_string(&mut spec.build(16, 42), &[("seed", Json::UInt(42))]);
    let live = stream(spec.build(16, 42));
    println!("== live diurnal stream (3 simulated days, 16 sites) ==");
    report(&live);
    println!(
        "trace: {} lines, {} bytes",
        trace.lines().count(),
        trace.len()
    );

    // Replay the recorded trace: bit-identical outcome.
    let replayed = stream(reader_from_string(trace));
    assert_eq!(live, replayed, "replay must reproduce the live run exactly");
    println!();
    println!("replayed trace reproduces the live run exactly (all fields equal)");
}

fn report(r: &StreamReport) {
    println!(
        "jobs {:>6}   accepted {:>6} ({:>5.1} % | {} local, {} distributed)",
        r.guarantee.submitted,
        r.guarantee.accepted(),
        100.0 * r.guarantee_ratio(),
        r.guarantee.accepted_locally,
        r.guarantee.accepted_distributed,
    );
    println!(
        "peaks: {} in-flight jobs, {} plan reservations, {} queued events ({} harvests)",
        r.peak_inflight_jobs, r.peak_plan_reservations, r.peak_queue_len, r.harvests
    );
    assert_eq!(r.deadline_misses(), 0);
}
