//! The Mapper (§9 and §12): Trial-Mapping construction.
//!
//! The Mapper partitions a DAG over the logical processors of the ACS. The
//! paper deliberately leaves the heuristic open ("almost any heuristic can be
//! adapted to our purpose") and then details one concrete instance in §12,
//! which is exactly what this module implements:
//!
//! * **task selection** — list scheduling by critical-path priority: the
//!   priority of `t_i` is the length of the longest node-weight path from
//!   `t_i` to a sink, `t_i` included; only *free* tasks (all predecessors
//!   already mapped) are eligible,
//! * **processor selection** — greedy: the processor giving the earliest
//!   finishing time for the selected task,
//! * **durations** — the execution of `t_i` on processor `p_j` is estimated
//!   as `c(t_i) / I_j` (surplus-scaled); the §13 uniform-machine extension
//!   additionally divides by the processor's relative speed,
//! * **communication delays** — over-estimated by the delay-diameter `ω` of
//!   the current ACS for tasks mapped on different processors (0 on the same
//!   processor),
//! * **start times** — a task starts no sooner than the end of the previous
//!   task mapped on its processor, nor before `d_j + ω` for every immediate
//!   predecessor `t_j` on another processor.
//!
//! The Mapper also computes the reference schedule `S*` — same assignment and
//! per-processor task order, but with every surplus set to 100 % — whose
//! makespan `M*` lower-bounds `M` and drives the §12.2 adjustment cases.

use rtds_graph::{critical_path_tasks, TaskGraph, TaskId};
use rtds_sched::admission::priority_order;
use serde::{Deserialize, Serialize};

/// One logical processor offered to the Mapper: a site of the ACS described
/// by its surplus (and, for the §13 uniform-machines extension, its relative
/// speed).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessorSpec {
    /// §2 surplus `I_j ∈ (0, 1]` of the site.
    pub surplus: f64,
    /// Relative computing power (1.0 = reference machine).
    pub speed: f64,
}

impl ProcessorSpec {
    /// A unit-speed processor with the given surplus.
    pub fn with_surplus(surplus: f64) -> Self {
        ProcessorSpec {
            surplus,
            speed: 1.0,
        }
    }
}

/// Input of one Mapper invocation.
pub struct MapperInput<'a> {
    /// The job's task graph.
    pub graph: &'a TaskGraph,
    /// Job release `r` (absolute time; the schedule starts no earlier).
    pub release: f64,
    /// Logical processors, *sorted by decreasing surplus* as §9 prescribes
    /// (the Mapper itself does not re-sort; the ACS layer provides the order).
    pub processors: &'a [ProcessorSpec],
    /// Communication-delay over-estimate `ω` (the ACS delay-diameter).
    pub comm_delay: f64,
    /// Optional per-edge extra delay: data volume divided by throughput
    /// (§13). Zero when the base propagation-only model is used.
    pub data_volume_delay: Option<&'a dyn Fn(TaskId, TaskId) -> f64>,
    /// Lower bound applied to surpluses so duration estimates stay finite.
    pub surplus_floor: f64,
}

impl<'a> MapperInput<'a> {
    /// Convenience constructor for the common propagation-only case.
    pub fn new(
        graph: &'a TaskGraph,
        release: f64,
        processors: &'a [ProcessorSpec],
        comm_delay: f64,
    ) -> Self {
        MapperInput {
            graph,
            release,
            processors,
            comm_delay,
            data_volume_delay: None,
            surplus_floor: 1e-3,
        }
    }
}

/// Output of the Mapper: the trial schedule `S`, the reference schedule `S*`
/// and the processor assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapperResult {
    /// `assignment[t]` is the logical processor (index into the input
    /// processor list) chosen for task `t`.
    pub assignment: Vec<usize>,
    /// Start time of each task in `S` (the paper's `r_i`).
    pub start: Vec<f64>,
    /// Finish time of each task in `S` (the paper's `d_i`).
    pub finish: Vec<f64>,
    /// Start time of each task in `S*` (surpluses = 100 %).
    pub star_start: Vec<f64>,
    /// Finish time of each task in `S*`.
    pub star_finish: Vec<f64>,
    /// Makespan `M` of `S`, measured from the job release.
    pub makespan: f64,
    /// Makespan `M*` of `S*`, measured from the job release.
    pub makespan_star: f64,
    /// Job release the schedules are anchored at.
    pub release: f64,
    /// Communication-delay over-estimate used.
    pub comm_delay: f64,
    /// Logical processors actually used (indices into the input list),
    /// in increasing index order — this is the paper's set `U`.
    pub used_processors: Vec<usize>,
    /// Per-processor task order of `S` (task ids in increasing start time),
    /// indexed like the input processor list.
    pub processor_order: Vec<Vec<TaskId>>,
}

impl MapperResult {
    /// The number of logical processors `|U|` the mapping relies on.
    pub fn used_count(&self) -> usize {
        self.used_processors.len()
    }

    /// Tasks assigned to the given logical processor, in execution order.
    pub fn tasks_on(&self, processor: usize) -> &[TaskId] {
        &self.processor_order[processor]
    }
}

/// Runs the §12 Mapper. Returns `None` only for degenerate inputs (no
/// processors offered, or an empty processor list after filtering); an empty
/// graph maps to an empty schedule.
pub fn map_dag(input: &MapperInput<'_>) -> Option<MapperResult> {
    let graph = input.graph;
    let n = graph.task_count();
    let m = input.processors.len();
    if m == 0 {
        return None;
    }
    let info = critical_path_tasks(graph);
    let order = priority_order(graph, &info.upward);

    // Effective execution rates per processor for S (surplus-scaled) and for
    // S* (full surplus). Both honour the uniform-machine speed.
    let rate_s: Vec<f64> = input
        .processors
        .iter()
        .map(|p| (p.surplus.max(input.surplus_floor) * p.speed).max(input.surplus_floor))
        .collect();
    let rate_star: Vec<f64> = input
        .processors
        .iter()
        .map(|p| p.speed.max(1e-12))
        .collect();

    let comm = |from: TaskId, to: TaskId, same_processor: bool| -> f64 {
        if same_processor {
            0.0
        } else {
            let extra = input.data_volume_delay.map(|f| f(from, to)).unwrap_or(0.0);
            input.comm_delay + extra
        }
    };

    let mut assignment = vec![usize::MAX; n];
    let mut start = vec![0.0f64; n];
    let mut finish = vec![0.0f64; n];
    let mut avail = vec![input.release; m];
    let mut processor_order: Vec<Vec<TaskId>> = vec![Vec::new(); m];

    // Greedy EFT list scheduling for S. When per-edge data volumes are in
    // play, ties on the finishing time (within the float tolerance) break
    // towards the processor pulling the *least* cross-processor data — a
    // data-locality refinement that changes nothing on volume-free graphs
    // (every candidate's cross-traffic is 0 there).
    for &t in &order {
        let mut best: Option<(usize, f64, f64, f64)> = None; // (proc, start, finish, cross)
        for p in 0..m {
            let mut est = avail[p].max(input.release);
            let mut cross = 0.0f64;
            for pred in graph.predecessors(t) {
                let same = assignment[pred.0] == p;
                est = est.max(finish[pred.0] + comm(pred, t, same));
                if !same {
                    if let Some(f) = input.data_volume_delay {
                        cross += f(pred, t);
                    }
                }
            }
            let dur = graph.cost(t) / rate_s[p];
            let eft = est + dur;
            let better = match best {
                None => true,
                Some((_, _, best_eft, best_cross)) => {
                    eft < best_eft - 1e-12
                        || (input.data_volume_delay.is_some()
                            && (eft - best_eft).abs() <= 1e-12
                            && cross < best_cross - 1e-12)
                }
            };
            if better {
                best = Some((p, est, eft, cross));
            }
        }
        let (p, s, f, _) = best.expect("at least one processor");
        assignment[t.0] = p;
        start[t.0] = s;
        finish[t.0] = f;
        avail[p] = f;
        processor_order[p].push(t);
    }

    // S*: same assignment, same per-processor order, surpluses at 100 %.
    let mut star_start = vec![0.0f64; n];
    let mut star_finish = vec![0.0f64; n];
    {
        let mut avail = vec![input.release; m];
        // Replay tasks in the same global list order (which is consistent with
        // both the precedence constraints and the per-processor orders of S).
        for &t in &order {
            let p = assignment[t.0];
            let mut est = avail[p].max(input.release);
            for pred in graph.predecessors(t) {
                let same = assignment[pred.0] == p;
                est = est.max(star_finish[pred.0] + comm(pred, t, same));
            }
            let dur = graph.cost(t) / rate_star[p];
            star_start[t.0] = est;
            star_finish[t.0] = est + dur;
            avail[p] = est + dur;
        }
    }

    let makespan = finish
        .iter()
        .copied()
        .fold(0.0f64, f64::max)
        .max(input.release)
        - input.release;
    let makespan_star = star_finish
        .iter()
        .copied()
        .fold(0.0f64, f64::max)
        .max(input.release)
        - input.release;
    let mut used_processors: Vec<usize> = assignment
        .iter()
        .copied()
        .filter(|p| *p != usize::MAX)
        .collect();
    used_processors.sort_unstable();
    used_processors.dedup();

    Some(MapperResult {
        assignment,
        start,
        finish,
        star_start,
        star_finish,
        makespan,
        makespan_star,
        release: input.release,
        comm_delay: input.comm_delay,
        used_processors,
        processor_order,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtds_graph::paper_instance::{
        paper_task_graph, EXPECTED_MAKESPAN_S, EXPECTED_MAKESPAN_S_STAR, EXPECTED_SCHEDULE_S,
        EXPECTED_SCHEDULE_S_STAR, PAPER_ACS_DIAMETER, PAPER_SURPLUS_P1, PAPER_SURPLUS_P2,
    };

    fn paper_processors() -> Vec<ProcessorSpec> {
        vec![
            ProcessorSpec::with_surplus(PAPER_SURPLUS_P1),
            ProcessorSpec::with_surplus(PAPER_SURPLUS_P2),
        ]
    }

    #[test]
    fn reproduces_the_paper_schedule_s() {
        let graph = paper_task_graph();
        let processors = paper_processors();
        let input = MapperInput::new(&graph, 0.0, &processors, PAPER_ACS_DIAMETER);
        let result = map_dag(&input).unwrap();
        for (task, proc, start, finish) in EXPECTED_SCHEDULE_S {
            assert_eq!(result.assignment[task], proc, "task {task} processor");
            assert!(
                (result.start[task] - start).abs() < 1e-9,
                "task {task} start: {} vs {start}",
                result.start[task]
            );
            assert!(
                (result.finish[task] - finish).abs() < 1e-9,
                "task {task} finish: {} vs {finish}",
                result.finish[task]
            );
        }
        assert!((result.makespan - EXPECTED_MAKESPAN_S).abs() < 1e-9);
        assert_eq!(result.used_processors, vec![0, 1]);
        assert_eq!(result.used_count(), 2);
        assert_eq!(
            result.tasks_on(0),
            &[TaskId(0), TaskId(2), TaskId(4)],
            "p1 runs t1, t3, t5"
        );
        assert_eq!(result.tasks_on(1), &[TaskId(1), TaskId(3)]);
    }

    #[test]
    fn reproduces_the_paper_schedule_s_star() {
        let graph = paper_task_graph();
        let processors = paper_processors();
        let input = MapperInput::new(&graph, 0.0, &processors, PAPER_ACS_DIAMETER);
        let result = map_dag(&input).unwrap();
        for (task, proc, start, finish) in EXPECTED_SCHEDULE_S_STAR {
            assert_eq!(result.assignment[task], proc);
            assert!(
                (result.star_start[task] - start).abs() < 1e-9,
                "task {task} S* start: {} vs {start}",
                result.star_start[task]
            );
            assert!(
                (result.star_finish[task] - finish).abs() < 1e-9,
                "task {task} S* finish: {} vs {finish}",
                result.star_finish[task]
            );
        }
        assert!((result.makespan_star - EXPECTED_MAKESPAN_S_STAR).abs() < 1e-9);
        assert!(result.makespan_star <= result.makespan + 1e-9);
    }

    #[test]
    fn empty_processor_list_is_rejected() {
        let graph = paper_task_graph();
        let input = MapperInput::new(&graph, 0.0, &[], 3.0);
        assert!(map_dag(&input).is_none());
    }

    #[test]
    fn empty_graph_maps_to_empty_schedule() {
        let graph = TaskGraph::new();
        let processors = vec![ProcessorSpec::with_surplus(1.0)];
        let input = MapperInput::new(&graph, 5.0, &processors, 2.0);
        let result = map_dag(&input).unwrap();
        assert!(result.assignment.is_empty());
        assert_eq!(result.makespan, 0.0);
        assert_eq!(result.makespan_star, 0.0);
        assert!(result.used_processors.is_empty());
    }

    #[test]
    fn single_processor_serialises_the_dag() {
        let graph = paper_task_graph();
        let processors = vec![ProcessorSpec::with_surplus(1.0)];
        let input = MapperInput::new(&graph, 0.0, &processors, 100.0);
        let result = map_dag(&input).unwrap();
        // Everything on processor 0, no communication delays, so the makespan
        // is the total cost 21.
        assert!(result.assignment.iter().all(|&p| p == 0));
        assert!((result.makespan - 21.0).abs() < 1e-9);
        assert_eq!(result.used_count(), 1);
    }

    #[test]
    fn release_anchors_the_schedule() {
        let graph = paper_task_graph();
        let processors = paper_processors();
        let input = MapperInput::new(&graph, 100.0, &processors, PAPER_ACS_DIAMETER);
        let result = map_dag(&input).unwrap();
        // Same shape as the paper schedule, shifted by the release.
        for (task, _, start, finish) in EXPECTED_SCHEDULE_S {
            assert!((result.start[task] - (start + 100.0)).abs() < 1e-9);
            assert!((result.finish[task] - (finish + 100.0)).abs() < 1e-9);
        }
        assert!((result.makespan - EXPECTED_MAKESPAN_S).abs() < 1e-9);
    }

    #[test]
    fn uniform_machine_speed_shortens_durations() {
        let graph = paper_task_graph();
        let slow = vec![ProcessorSpec::with_surplus(1.0)];
        let fast = vec![ProcessorSpec {
            surplus: 1.0,
            speed: 2.0,
        }];
        let m_slow = map_dag(&MapperInput::new(&graph, 0.0, &slow, 0.0)).unwrap();
        let m_fast = map_dag(&MapperInput::new(&graph, 0.0, &fast, 0.0)).unwrap();
        assert!((m_slow.makespan - 2.0 * m_fast.makespan).abs() < 1e-9);
    }

    #[test]
    fn data_volume_delays_are_added_between_processors() {
        // Two tasks in a chain on two processors: the extra data-volume delay
        // must show up in the successor's start time.
        let mut graph = TaskGraph::from_costs(&[4.0, 4.0]);
        graph.add_edge(TaskId(0), TaskId(1)).unwrap();
        let processors = vec![
            ProcessorSpec::with_surplus(1.0),
            ProcessorSpec::with_surplus(1.0),
        ];
        let volume_delay = |_from: TaskId, _to: TaskId| 3.0;
        let input = MapperInput {
            graph: &graph,
            release: 0.0,
            processors: &processors,
            comm_delay: 1.0,
            data_volume_delay: Some(&volume_delay),
            surplus_floor: 1e-3,
        };
        let result = map_dag(&input).unwrap();
        // EFT keeps both tasks on processor 0 here (4 + 4 = 8 is better than
        // waiting 4 + 1 + 3 + 4 = 12 on processor 1), which is itself the
        // correct greedy decision under the inflated communication cost.
        assert_eq!(result.assignment, vec![0, 0]);
        assert!((result.makespan - 8.0).abs() < 1e-9);
        // With zero computation on the second processor's queue and a huge
        // first-processor load the mapper splits and pays the delay.
        let skewed = vec![
            ProcessorSpec::with_surplus(0.1),
            ProcessorSpec::with_surplus(1.0),
        ];
        let input = MapperInput {
            graph: &graph,
            release: 0.0,
            processors: &skewed,
            comm_delay: 1.0,
            data_volume_delay: Some(&volume_delay),
            surplus_floor: 1e-3,
        };
        let result = map_dag(&input).unwrap();
        assert_eq!(result.assignment, vec![1, 1]);
    }

    #[test]
    fn finish_time_ties_break_towards_data_locality() {
        // Diamond-ish shape: t3 is a long straggler every candidate must wait
        // for, so t2's finishing time ties across all three processors and
        // only the cross-processor data volume separates them.
        let mut graph = TaskGraph::from_costs(&[1.0, 1.0, 1.0, 10.0]);
        graph
            .add_edge_with_volume(TaskId(0), TaskId(2), 1.0)
            .unwrap();
        graph
            .add_edge_with_volume(TaskId(1), TaskId(2), 3.0)
            .unwrap();
        graph
            .add_edge_with_volume(TaskId(3), TaskId(2), 0.0)
            .unwrap();
        let processors = vec![
            ProcessorSpec::with_surplus(1.0),
            ProcessorSpec::with_surplus(1.0),
            ProcessorSpec::with_surplus(1.0),
        ];
        let volume_delay = |from: TaskId, to: TaskId| graph.data_volume(from, to).unwrap_or(0.0);
        let input = MapperInput {
            graph: &graph,
            release: 0.0,
            processors: &processors,
            comm_delay: 0.0,
            data_volume_delay: Some(&volume_delay),
            surplus_floor: 1e-3,
        };
        let result = map_dag(&input).unwrap();
        // Greedy spread: t3 (longest) on p0, then t0 on p1, t1 on p2. All
        // three candidates finish t2 at the same instant (waiting on t3), so
        // the tie breaks to p2, which pulls only t0's volume 1 across.
        assert_eq!(result.assignment[3], 0);
        assert_eq!(result.assignment[0], 1);
        assert_eq!(result.assignment[1], 2);
        assert_eq!(
            result.assignment[2], 2,
            "tie must break to least cross-traffic"
        );
        // Without volumes the same tie is broken by processor index, as
        // before this refinement.
        let input = MapperInput::new(&graph, 0.0, &processors, 0.0);
        let result = map_dag(&input).unwrap();
        assert_eq!(result.assignment[2], 0);
    }

    #[test]
    fn surplus_floor_prevents_infinite_durations() {
        let graph = paper_task_graph();
        let processors = vec![ProcessorSpec::with_surplus(0.0)];
        let mut input = MapperInput::new(&graph, 0.0, &processors, 0.0);
        input.surplus_floor = 0.01;
        let result = map_dag(&input).unwrap();
        assert!(result.makespan.is_finite());
        assert!(result.makespan > 0.0);
    }
}
