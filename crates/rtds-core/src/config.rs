//! Configuration of an RTDS deployment.

use rtds_graph::TaskGraph;
use rtds_sched::{SchedulerKind, SpeedupFn, TaskDemand};
use serde::{Deserialize, Serialize};

/// How the extra laxity of case (iii) is scattered over the tasks (§12.2 and
/// the §13 "Laxity Dispatching" generalisation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LaxityDispatch {
    /// The base rule: every task receives the same laxity
    /// `ℓ = (d - r - M*) / η`.
    Uniform,
    /// §13: tasks on the longest critical paths receive laxity proportional
    /// to the busyness `1 - I` of the processor they are mapped on.
    BusynessWeighted,
}

/// How per-task resource demands are derived from a job's task graph.
///
/// Deterministic by construction (no RNG): the same graph always yields the
/// same demands, so sweeps stay byte-identical across thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum DemandRule {
    /// Every task is a default single-core demand (the paper's model; the
    /// default). Schedulers receive `None` and take their degenerate fast
    /// paths.
    #[default]
    SingleCore,
    /// Tasks cycle through widths `1..=cores` by task id, each scaling by
    /// Amdahl's law with the given parallel fraction and holding `memory`
    /// units while resident.
    WideTasks {
        /// Maximum task width (clamped per-site to the cores that exist).
        cores: usize,
        /// Amdahl parallel fraction in `[0, 1]`.
        parallel_fraction: f64,
        /// Memory held by each task for the span of its reservations.
        memory: f64,
    },
}

impl DemandRule {
    /// Demands for each task of `graph`, or `None` for the single-core rule
    /// (which lets schedulers delegate to the original single-plan
    /// primitives verbatim).
    pub fn demands_for(&self, graph: &TaskGraph) -> Option<Vec<TaskDemand>> {
        match *self {
            DemandRule::SingleCore => None,
            DemandRule::WideTasks {
                cores,
                parallel_fraction,
                memory,
            } => {
                let span = cores.max(1);
                Some(
                    graph
                        .task_ids()
                        .map(|t| TaskDemand {
                            cores: 1 + t.0 % span,
                            memory,
                            speedup: SpeedupFn::Amdahl { parallel_fraction },
                        })
                        .collect(),
                )
            }
        }
    }

    /// Validates the rule.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            DemandRule::SingleCore => Ok(()),
            DemandRule::WideTasks {
                cores,
                parallel_fraction,
                memory,
            } => {
                if cores == 0 {
                    return Err("WideTasks cores must be >= 1".into());
                }
                if !(0.0..=1.0).contains(&parallel_fraction) {
                    return Err("WideTasks parallel_fraction must lie in [0, 1]".into());
                }
                if !(memory >= 0.0 && memory.is_finite()) {
                    return Err("WideTasks memory must be finite and >= 0".into());
                }
                Ok(())
            }
        }
    }
}

/// Tunable parameters of the RTDS protocol.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RtdsConfig {
    /// Hop radius `h` of the Potential Computing Sphere. The distributed
    /// routing exchange runs for `2h` phases (§7.2).
    pub sphere_radius: usize,
    /// Length of the observation window over which the §2 surplus is
    /// computed.
    pub observation_window: f64,
    /// Maximum number of PCS peers enrolled into an ACS (0 = no cap, enrol
    /// the whole PCS). Candidates are taken closest-first in delay.
    pub max_acs_size: usize,
    /// §13: allow tasks to be split across idle windows (preemptive model).
    pub preemptive: bool,
    /// §13: respect per-site relative computing powers (uniform machines).
    /// When `false` every site is treated as unit speed regardless of the
    /// topology's speed annotations.
    pub uniform_machines: bool,
    /// §13: how the extra laxity of adjustment case (iii) is dispatched.
    pub laxity_dispatch: LaxityDispatch,
    /// §13: account for per-edge data volumes in communication delays
    /// (delay = propagation + volume / throughput).
    pub data_volume_aware: bool,
    /// Link throughput used when `data_volume_aware` is set (volume units per
    /// time unit).
    pub throughput: f64,
    /// Lower bound on the surplus used by the Mapper so duration estimates
    /// `c / I` stay finite on a fully busy site.
    pub surplus_floor: f64,
    /// When `true` the ACS delay-diameter is computed exactly from global
    /// routing knowledge; when `false` (the default, and the only information
    /// actually available to the initiator in the distributed setting) it is
    /// over-estimated as `max_{a,b ∈ ACS} (δ(k,a) + δ(k,b))`.
    pub exact_acs_diameter: bool,
    /// Move task input data through the engine's shared-bandwidth flow plane
    /// instead of treating volumes as a pure delay term: committed
    /// distributed jobs ship each remote member's input volume as a flow
    /// that contends for link bandwidth with every concurrent transfer.
    /// `false` (the default) keeps runs byte-identical to the pre-flow
    /// engine; zero-volume workloads never start flows either way.
    pub flow_transfers: bool,
    /// Which local scheduling policy every site runs. The default
    /// ([`SchedulerKind::Protocol`]) is the paper's §5/§12 list scheduler
    /// and, on single-core sites, reproduces pre-multicore behaviour
    /// bit-identically.
    pub scheduler: SchedulerKind,
    /// How per-task core/memory/speedup demands are derived from each job's
    /// graph. The default ([`DemandRule::SingleCore`]) is the paper's model.
    pub demand: DemandRule,
}

impl Default for RtdsConfig {
    fn default() -> Self {
        RtdsConfig {
            sphere_radius: 2,
            observation_window: 200.0,
            max_acs_size: 0,
            preemptive: false,
            uniform_machines: false,
            laxity_dispatch: LaxityDispatch::Uniform,
            data_volume_aware: false,
            throughput: 1.0,
            surplus_floor: 0.05,
            exact_acs_diameter: false,
            flow_transfers: false,
            scheduler: SchedulerKind::Protocol,
            demand: DemandRule::SingleCore,
        }
    }
}

impl RtdsConfig {
    /// Number of routing-exchange phases run at initialisation (§7.2: `2h`).
    pub fn pcs_phases(&self) -> usize {
        2 * self.sphere_radius
    }

    /// Checks the configuration for nonsensical values.
    pub fn validate(&self) -> Result<(), String> {
        if self.observation_window <= 0.0 {
            return Err("observation_window must be positive".into());
        }
        if !(self.surplus_floor > 0.0 && self.surplus_floor <= 1.0) {
            return Err("surplus_floor must lie in (0, 1]".into());
        }
        if self.data_volume_aware && self.throughput <= 0.0 {
            return Err("throughput must be positive when data_volume_aware".into());
        }
        if self.flow_transfers && !self.data_volume_aware {
            return Err("flow_transfers requires data_volume_aware (volumes drive flows)".into());
        }
        self.demand.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        let c = RtdsConfig::default();
        assert!(c.validate().is_ok());
        assert_eq!(c.pcs_phases(), 4);
        assert_eq!(c.laxity_dispatch, LaxityDispatch::Uniform);
    }

    #[test]
    fn invalid_configs_are_reported() {
        let c = RtdsConfig {
            observation_window: 0.0,
            ..RtdsConfig::default()
        };
        assert!(c.validate().is_err());
        let c = RtdsConfig {
            surplus_floor: 0.0,
            ..RtdsConfig::default()
        };
        assert!(c.validate().is_err());
        let c = RtdsConfig {
            surplus_floor: 2.0,
            ..RtdsConfig::default()
        };
        assert!(c.validate().is_err());
        let c = RtdsConfig {
            data_volume_aware: true,
            throughput: 0.0,
            ..RtdsConfig::default()
        };
        assert!(c.validate().is_err());
        let c = RtdsConfig {
            flow_transfers: true,
            data_volume_aware: false,
            ..RtdsConfig::default()
        };
        assert!(c.validate().is_err());
        let c = RtdsConfig {
            flow_transfers: true,
            data_volume_aware: true,
            ..RtdsConfig::default()
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn default_scheduler_and_demand_are_the_paper_model() {
        let c = RtdsConfig::default();
        assert_eq!(c.scheduler, SchedulerKind::Protocol);
        assert_eq!(c.demand, DemandRule::SingleCore);
        let g = TaskGraph::from_costs(&[1.0, 2.0, 3.0]);
        assert!(c.demand.demands_for(&g).is_none());
    }

    #[test]
    fn wide_tasks_demands_cycle_widths_deterministically() {
        let rule = DemandRule::WideTasks {
            cores: 2,
            parallel_fraction: 0.9,
            memory: 4.0,
        };
        assert!(rule.validate().is_ok());
        let g = TaskGraph::from_costs(&[1.0, 1.0, 1.0, 1.0]);
        let demands = rule.demands_for(&g).unwrap();
        assert_eq!(demands.len(), 4);
        let widths: Vec<usize> = demands.iter().map(|d| d.cores).collect();
        assert_eq!(widths, vec![1, 2, 1, 2]);
        assert!(demands.iter().all(|d| d.memory == 4.0));
        assert_eq!(rule.demands_for(&g).unwrap(), demands);

        assert!(DemandRule::WideTasks {
            cores: 0,
            parallel_fraction: 0.5,
            memory: 0.0
        }
        .validate()
        .is_err());
        assert!(DemandRule::WideTasks {
            cores: 2,
            parallel_fraction: 1.5,
            memory: 0.0
        }
        .validate()
        .is_err());
        assert!(DemandRule::WideTasks {
            cores: 2,
            parallel_fraction: 0.5,
            memory: -1.0
        }
        .validate()
        .is_err());
        let c = RtdsConfig {
            demand: DemandRule::WideTasks {
                cores: 0,
                parallel_fraction: 0.5,
                memory: 0.0,
            },
            ..RtdsConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn pcs_phase_count_follows_radius() {
        let c = RtdsConfig {
            sphere_radius: 5,
            ..RtdsConfig::default()
        };
        assert_eq!(c.pcs_phases(), 10);
    }
}
