//! Routing tables as maintained by the distributed algorithm of §7.1.
//!
//! "Each node maintains a routing table consisting of route lines like
//! `<destination, distance, next hop>`." We additionally record the hop count
//! of the route so the Potential Computing Sphere — whose radius is defined
//! in *hops* — can be read straight off the table.

use crate::topology::SiteId;
use serde::{Deserialize, Serialize};

/// One line of a routing table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouteEntry {
    /// Destination site.
    pub destination: SiteId,
    /// Minimum known delay to the destination.
    pub distance: f64,
    /// Neighbor to which messages for the destination are forwarded
    /// (`None` only for the self-entry).
    pub next_hop: Option<SiteId>,
    /// Number of links of the recorded route.
    pub hops: usize,
}

/// Routing table of one site: destination → best known route.
///
/// Site ids are dense, so the table is a plain vector indexed by destination
/// (`entries[d]` is the best known route to site `d`, `None` while the
/// destination is unknown). Iteration runs in index — and therefore
/// destination — order, so routing-update messages stay deterministic and
/// byte-identical to the historical ordered-map representation; lookups and
/// the §7.1 merge are O(1) per destination instead of tree walks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoutingTable {
    owner: SiteId,
    entries: Vec<Option<RouteEntry>>,
    /// Number of `Some` entries (known destinations).
    known: usize,
    /// Bumped on every entry improvement (not part of table equality; used
    /// by [`RoutingTable::merge_from_neighbor`] to report change).
    version: u64,
}

impl PartialEq for RoutingTable {
    /// Two tables are equal when they record the same routes — trailing
    /// unknown slots (an artifact of how far each table has grown) are
    /// ignored.
    fn eq(&self, other: &Self) -> bool {
        self.owner == other.owner && self.known == other.known && self.entries().eq(other.entries())
    }
}

impl RoutingTable {
    /// Creates the initial routing table of a site: one self-entry of
    /// distance 0 plus one entry per adjacent link (§7.1 start conditions).
    pub fn initial(owner: SiteId, neighbors: &[(SiteId, f64)]) -> Self {
        let capacity = neighbors
            .iter()
            .map(|(n, _)| n.0)
            .chain(std::iter::once(owner.0))
            .max()
            .unwrap_or(0)
            + 1;
        let mut table = RoutingTable {
            owner,
            entries: vec![None; capacity],
            known: 0,
            version: 0,
        };
        table.set(RouteEntry {
            destination: owner,
            distance: 0.0,
            next_hop: None,
            hops: 0,
        });
        for &(nb, delay) in neighbors {
            table.set(RouteEntry {
                destination: nb,
                distance: delay,
                next_hop: Some(nb),
                hops: 1,
            });
        }
        table
    }

    /// Inserts or replaces the route line for its destination.
    fn set(&mut self, entry: RouteEntry) {
        let idx = entry.destination.0;
        if idx >= self.entries.len() {
            self.entries.resize(idx + 1, None);
        }
        if self.entries[idx].is_none() {
            self.known += 1;
        }
        self.entries[idx] = Some(entry);
    }

    /// Rebuilds a table from route lines captured by
    /// [`RoutingTable::entries`]. The change-tracking version restarts at
    /// zero — it is transient merge bookkeeping, not part of table
    /// equality.
    pub fn from_entries(owner: SiteId, entries: impl IntoIterator<Item = RouteEntry>) -> Self {
        let mut table = RoutingTable {
            owner,
            entries: Vec::new(),
            known: 0,
            version: 0,
        };
        for entry in entries {
            table.set(entry);
        }
        table
    }

    /// The site owning this table.
    pub fn owner(&self) -> SiteId {
        self.owner
    }

    /// Number of known destinations (including the owner itself).
    pub fn len(&self) -> usize {
        self.known
    }

    /// Returns `true` if the table only knows the owner.
    pub fn is_empty(&self) -> bool {
        self.known <= 1
    }

    /// Route to a destination, if known.
    #[inline]
    pub fn route(&self, destination: SiteId) -> Option<&RouteEntry> {
        self.entries.get(destination.0).and_then(|e| e.as_ref())
    }

    /// Minimum known delay to a destination.
    pub fn distance(&self, destination: SiteId) -> Option<f64> {
        self.route(destination).map(|e| e.distance)
    }

    /// Hop count of the best known route to a destination.
    pub fn hops(&self, destination: SiteId) -> Option<usize> {
        self.route(destination).map(|e| e.hops)
    }

    /// Next hop towards a destination (None for the owner itself).
    pub fn next_hop(&self, destination: SiteId) -> Option<SiteId> {
        self.route(destination).and_then(|e| e.next_hop)
    }

    /// Iterator over all route lines in destination order.
    pub fn entries(&self) -> impl Iterator<Item = &RouteEntry> {
        self.entries.iter().filter_map(|e| e.as_ref())
    }

    /// All destinations whose recorded route uses at most `max_hops` links —
    /// the membership test behind the Potential Computing Sphere.
    pub fn destinations_within_hops(&self, max_hops: usize) -> Vec<SiteId> {
        self.entries()
            .filter(|e| e.hops <= max_hops)
            .map(|e| e.destination)
            .collect()
    }

    /// Receiving step of §7.1: merge a neighbor's route lines, reached over a
    /// link of delay `link_delay`. Returns `true` if any entry changed (the
    /// classical "send updates only when the vector changed" optimisation).
    pub fn merge_from_neighbor(
        &mut self,
        neighbor: SiteId,
        link_delay: f64,
        lines: &[RouteEntry],
    ) -> bool {
        let before = self.version;
        self.merge_tracked(neighbor, link_delay, lines, &mut Vec::new());
        self.version != before
    }

    /// [`RoutingTable::merge_from_neighbor`], additionally appending the
    /// destination of every line that improved to `improved` (possibly with
    /// duplicates across calls — callers sort and dedup). This is the
    /// tracking half of the classical delta optimisation: a line that did
    /// not improve in a phase was already broadcast at its current value in
    /// an earlier phase, so re-sending it is provably a no-op for every
    /// neighbor and the next broadcast can carry only the improved lines.
    pub fn merge_tracked(
        &mut self,
        neighbor: SiteId,
        link_delay: f64,
        lines: &[RouteEntry],
        improved: &mut Vec<SiteId>,
    ) {
        for line in lines {
            let dest = line.destination;
            if dest == self.owner {
                continue;
            }
            let candidate = RouteEntry {
                destination: dest,
                distance: line.distance + link_delay,
                next_hop: Some(neighbor),
                hops: line.hops + 1,
            };
            let better = match self.route(dest) {
                None => true,
                Some(existing) => {
                    candidate.distance < existing.distance - 1e-12
                        || ((candidate.distance - existing.distance).abs() <= 1e-12
                            && candidate.hops < existing.hops)
                }
            };
            if better {
                self.set(candidate);
                self.version += 1;
                improved.push(dest);
            }
        }
    }

    /// Snapshot of the route lines, suitable for inclusion in a routing-update
    /// message (the §7.1 send step).
    pub fn lines(&self) -> Vec<RouteEntry> {
        self.entries().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_table() {
        let t = RoutingTable::initial(SiteId(0), &[(SiteId(1), 2.0), (SiteId(2), 4.0)]);
        assert_eq!(t.owner(), SiteId(0));
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.distance(SiteId(0)), Some(0.0));
        assert_eq!(t.distance(SiteId(1)), Some(2.0));
        assert_eq!(t.hops(SiteId(2)), Some(1));
        assert_eq!(t.next_hop(SiteId(1)), Some(SiteId(1)));
        assert_eq!(t.next_hop(SiteId(0)), None);
        assert_eq!(t.distance(SiteId(9)), None);
        let isolated = RoutingTable::initial(SiteId(5), &[]);
        assert!(isolated.is_empty());
    }

    #[test]
    fn merge_improves_routes() {
        // Owner 0 with neighbors 1 (delay 2) and 2 (delay 10).
        let mut t = RoutingTable::initial(SiteId(0), &[(SiteId(1), 2.0), (SiteId(2), 10.0)]);
        // Neighbor 1 knows 2 at distance 3 and 3 at distance 1.
        let lines = vec![
            RouteEntry {
                destination: SiteId(2),
                distance: 3.0,
                next_hop: Some(SiteId(2)),
                hops: 1,
            },
            RouteEntry {
                destination: SiteId(3),
                distance: 1.0,
                next_hop: Some(SiteId(3)),
                hops: 1,
            },
            RouteEntry {
                destination: SiteId(0),
                distance: 2.0,
                next_hop: Some(SiteId(0)),
                hops: 1,
            },
        ];
        let changed = t.merge_from_neighbor(SiteId(1), 2.0, &lines);
        assert!(changed);
        // 0 -> 2 now goes through 1: 2 + 3 = 5 < 10.
        assert_eq!(t.distance(SiteId(2)), Some(5.0));
        assert_eq!(t.next_hop(SiteId(2)), Some(SiteId(1)));
        assert_eq!(t.hops(SiteId(2)), Some(2));
        // New destination 3 learned at 2 + 1 = 3.
        assert_eq!(t.distance(SiteId(3)), Some(3.0));
        // The self-entry is never overwritten.
        assert_eq!(t.distance(SiteId(0)), Some(0.0));
        // Merging the same lines again changes nothing.
        assert!(!t.merge_from_neighbor(SiteId(1), 2.0, &lines));
    }

    #[test]
    fn merge_prefers_fewer_hops_on_delay_ties() {
        let mut t = RoutingTable::initial(SiteId(0), &[(SiteId(1), 1.0)]);
        // Learn destination 5 via a 3-hop route of total delay 4.
        t.merge_from_neighbor(
            SiteId(1),
            1.0,
            &[RouteEntry {
                destination: SiteId(5),
                distance: 3.0,
                next_hop: Some(SiteId(4)),
                hops: 3,
            }],
        );
        assert_eq!(t.hops(SiteId(5)), Some(4));
        // A same-delay but shorter-hop route replaces it.
        let changed = t.merge_from_neighbor(
            SiteId(1),
            1.0,
            &[RouteEntry {
                destination: SiteId(5),
                distance: 3.0,
                next_hop: Some(SiteId(5)),
                hops: 1,
            }],
        );
        assert!(changed);
        assert_eq!(t.hops(SiteId(5)), Some(2));
        assert_eq!(t.distance(SiteId(5)), Some(4.0));
    }

    #[test]
    fn destinations_within_hops() {
        let mut t = RoutingTable::initial(SiteId(0), &[(SiteId(1), 1.0)]);
        t.merge_from_neighbor(
            SiteId(1),
            1.0,
            &[RouteEntry {
                destination: SiteId(2),
                distance: 1.0,
                next_hop: Some(SiteId(2)),
                hops: 1,
            }],
        );
        assert_eq!(t.destinations_within_hops(0), vec![SiteId(0)]);
        assert_eq!(t.destinations_within_hops(1), vec![SiteId(0), SiteId(1)]);
        assert_eq!(
            t.destinations_within_hops(2),
            vec![SiteId(0), SiteId(1), SiteId(2)]
        );
        assert_eq!(t.lines().len(), 3);
    }
}
