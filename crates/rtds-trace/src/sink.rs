//! Trace sinks: where recorded events go.
//!
//! [`TraceSink`] is deliberately minimal — one `record_event` call per event,
//! a cheap `is_enabled` gate so producers can skip payload construction
//! entirely, and `flush` for streaming sinks. Three implementations cover the
//! whole space: [`NullSink`] (disabled, zero cost), [`RingSink`] (bounded
//! flight recorder), and [`JsonlSink`] (streaming `rtds-trace/1` writer).

use crate::event::TraceEvent;
use crate::jsonl::{self, Value};
use std::io::Write;

/// Destination for recorded trace events.
pub trait TraceSink {
    /// `false` means producers may skip building payloads altogether.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Records one event.
    fn record_event(&mut self, event: &TraceEvent);

    /// Flushes any buffered output (no-op for in-memory sinks).
    fn flush(&mut self) {}
}

/// Discards everything. `is_enabled` reports `false`, so a gated producer
/// pays one branch per would-be event and nothing else.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn is_enabled(&self) -> bool {
        false
    }

    fn record_event(&mut self, _event: &TraceEvent) {}
}

/// Fixed-capacity ring buffer: keeps the most recent `capacity` events and
/// counts what it had to drop. Memory use is bounded by construction, which
/// makes it the default sink for million-job streaming runs.
#[derive(Debug, Clone)]
pub struct RingSink {
    events: Vec<TraceEvent>,
    capacity: usize,
    next: usize,
    recorded: u64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> RingSink {
        let capacity = capacity.max(1);
        RingSink {
            events: Vec::with_capacity(capacity.min(1024)),
            capacity,
            next: 0,
            recorded: 0,
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever recorded (kept + dropped).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.recorded - self.events.len() as u64
    }

    /// Iterates the retained events in chronological (recording) order.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        let split = if self.events.len() == self.capacity {
            self.next
        } else {
            0
        };
        self.events[split..]
            .iter()
            .chain(self.events[..split].iter())
    }

    /// Copies the retained events out in chronological order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.iter().copied().collect()
    }
}

impl TraceSink for RingSink {
    fn record_event(&mut self, event: &TraceEvent) {
        self.recorded += 1;
        if self.events.len() < self.capacity {
            self.events.push(*event);
        } else {
            self.events[self.next] = *event;
            self.next = (self.next + 1) % self.capacity;
        }
    }
}

/// Streaming `rtds-trace/1` JSONL writer. The header line is written at
/// construction, then one line per event; memory use is one reusable line
/// buffer regardless of run length. I/O errors panic — trace files are
/// artifacts, and a torn trace is worse than a dead run.
pub struct JsonlSink<W: Write> {
    out: W,
    buf: String,
    recorded: u64,
}

impl<W: Write> JsonlSink<W> {
    /// Creates the sink and writes the self-contained header line. The
    /// `metadata` pairs are embedded in the header after the schema field.
    pub fn new(mut out: W, metadata: &[(&str, Value)]) -> JsonlSink<W> {
        let header = jsonl::header_line(metadata);
        out.write_all(header.as_bytes())
            .expect("rtds-trace: failed to write JSONL header");
        out.write_all(b"\n")
            .expect("rtds-trace: failed to write JSONL header");
        JsonlSink {
            out,
            buf: String::with_capacity(256),
            recorded: 0,
        }
    }

    /// Total events written.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> W {
        self.out
            .flush()
            .expect("rtds-trace: failed to flush JSONL sink");
        self.out
    }
}

impl<W: Write> std::fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("recorded", &self.recorded)
            .finish()
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record_event(&mut self, event: &TraceEvent) {
        self.buf.clear();
        jsonl::write_event_line(&mut self.buf, event);
        self.buf.push('\n');
        self.out
            .write_all(self.buf.as_bytes())
            .expect("rtds-trace: failed to write JSONL event");
        self.recorded += 1;
    }

    fn flush(&mut self) {
        self.out
            .flush()
            .expect("rtds-trace: failed to flush JSONL sink");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TracePayload;
    use crate::span::SpanId;

    fn mark(i: u32) -> TraceEvent {
        TraceEvent {
            time: i as f64,
            site: 0,
            span: SpanId::derive(1, crate::span::Phase::Custom, 0, i),
            parent: SpanId::NONE,
            payload: TracePayload::Mark {
                tag: i,
                value: i as f64,
            },
        }
    }

    #[test]
    fn ring_keeps_the_most_recent_events_and_counts_drops() {
        let mut ring = RingSink::new(3);
        for i in 0..5 {
            ring.record_event(&mark(i));
        }
        assert_eq!(ring.capacity(), 3);
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.recorded(), 5);
        assert_eq!(ring.dropped(), 2);
        let tags: Vec<u32> = ring
            .iter()
            .map(|e| match e.payload {
                TracePayload::Mark { tag, .. } => tag,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tags, vec![2, 3, 4]);
    }

    #[test]
    fn ring_under_capacity_iterates_in_order_with_no_drops() {
        let mut ring = RingSink::new(8);
        for i in 0..3 {
            ring.record_event(&mark(i));
        }
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.snapshot().len(), 3);
        assert_eq!(ring.snapshot()[0], mark(0));
    }

    #[test]
    fn null_sink_reports_disabled() {
        let mut null = NullSink;
        assert!(!null.is_enabled());
        null.record_event(&mark(0));
    }

    #[test]
    fn jsonl_sink_streams_header_then_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new(), &[("run", Value::U64(7))]);
        sink.record_event(&mark(0));
        sink.record_event(&mark(1));
        assert_eq!(sink.recorded(), 2);
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"schema\":\"rtds-trace/1\""));
        assert!(lines[0].contains("\"run\":7"));
        assert!(lines[1].contains("\"kind\":\"mark\""));
    }
}
