//! Shared experiment utilities: workload construction, policy comparison and
//! a small parallel sweep driver.

use rtds_baselines::{
    BiddingConfig, BroadcastBidding, CentralizedOracle, DistributionPolicy, GlobalHeft, LocalOnly,
    PolicyReport, RandomOffload, RandomOffloadConfig,
};
use rtds_core::{RtdsConfig, RtdsSystem, RunReport};
use rtds_graph::generators::{CostDistribution, DagGenerator, DagShape, GeneratorConfig};
use rtds_graph::Job;
use rtds_net::{Network, SiteId};
use rtds_sim::arrivals::{ArrivalProcess, ArrivalSchedule};

/// Description of a synthetic workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Per-site Poisson arrival rate (jobs per time unit).
    pub rate: f64,
    /// Simulation horizon for arrivals.
    pub horizon: f64,
    /// Tasks per job.
    pub tasks_per_job: usize,
    /// Deadline laxity factor range.
    pub laxity: (f64, f64),
    /// Restrict arrivals to the first `hotspots` sites (0 = all sites).
    pub hotspots: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            rate: 0.01,
            horizon: 300.0,
            tasks_per_job: 8,
            laxity: (1.6, 2.6),
            hotspots: 0,
            seed: 1,
        }
    }
}

/// Builds the workload described by `spec` for the given network.
pub fn workload(network: &Network, spec: WorkloadSpec) -> Vec<Job> {
    let schedule = if spec.hotspots == 0 {
        ArrivalSchedule::generate(
            ArrivalProcess::Poisson { rate: spec.rate },
            network.site_count(),
            spec.horizon,
            spec.seed,
        )
    } else {
        let sites: Vec<SiteId> = network.sites().take(spec.hotspots).collect();
        ArrivalSchedule::generate_on_sites(
            ArrivalProcess::Poisson { rate: spec.rate },
            &sites,
            spec.horizon,
            spec.seed,
        )
    };
    let cfg = GeneratorConfig {
        task_count: spec.tasks_per_job,
        shape: DagShape::LayeredRandom {
            layers: 3,
            edge_prob: 0.3,
        },
        costs: CostDistribution::Uniform { min: 2.0, max: 9.0 },
        ccr: 0.0,
        laxity_factor: spec.laxity,
    };
    let mut generator = DagGenerator::new(cfg, spec.seed.wrapping_mul(97).wrapping_add(13));
    schedule
        .arrivals()
        .iter()
        .map(|a| generator.generate_job(a.site.index(), a.time))
        .collect()
}

/// One row of a policy-comparison table.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Policy label.
    pub policy: String,
    /// Jobs accepted.
    pub accepted: u64,
    /// Jobs submitted.
    pub submitted: u64,
    /// Guarantee ratio (`None` for an empty workload — a 0/0 ratio).
    pub ratio: Option<f64>,
    /// Deadline misses among accepted jobs (must be zero).
    pub misses: u64,
    /// Distribution messages per submitted job (`None` for an empty
    /// workload).
    pub messages_per_job: Option<f64>,
}

impl ComparisonRow {
    fn from_policy(label: &str, report: &PolicyReport) -> Self {
        ComparisonRow {
            policy: label.to_string(),
            accepted: report.accepted(),
            submitted: report.submitted,
            ratio: report.guarantee_ratio(),
            misses: report.deadline_misses,
            messages_per_job: report.messages_per_job(),
        }
    }

    fn from_rtds(label: &str, report: &RunReport) -> Self {
        ComparisonRow {
            policy: label.to_string(),
            accepted: report.guarantee.accepted(),
            submitted: report.jobs_submitted,
            ratio: (report.jobs_submitted > 0).then(|| report.guarantee_ratio()),
            misses: report.deadline_misses(),
            messages_per_job: (report.jobs_submitted > 0).then_some(report.messages_per_job),
        }
    }

    /// Renders the row for a fixed-width table (`-` for undefined ratios).
    pub fn render(&self) -> String {
        let ratio = match self.ratio {
            Some(r) => format!("{r:>7.3}"),
            None => format!("{:>7}", "-"),
        };
        let mpj = match self.messages_per_job {
            Some(m) => format!("{m:>12.1}"),
            None => format!("{:>12}", "-"),
        };
        format!(
            "{:<22} {:>8}/{:<8} {ratio} {:>7} {mpj}",
            self.policy, self.accepted, self.submitted, self.misses,
        )
    }
}

/// Header matching [`ComparisonRow::render`].
pub fn comparison_header() -> String {
    format!(
        "{:<22} {:>8}/{:<8} {:>7} {:>7} {:>12}",
        "policy", "accepted", "submitted", "ratio", "misses", "msgs/job"
    )
}

/// Runs RTDS (full protocol) and returns its comparison row.
pub fn comparison_row(
    label: &str,
    network: &Network,
    jobs: &[Job],
    config: RtdsConfig,
    seed: u64,
) -> ComparisonRow {
    let mut system = RtdsSystem::new(network.clone(), config, seed);
    system.submit_workload(jobs.to_vec());
    let report = system.run();
    ComparisonRow::from_rtds(label, &report)
}

/// The five baselines parameterised for a comparison against `config`.
pub fn baseline_policies(config: &RtdsConfig, seed: u64) -> Vec<Box<dyn DistributionPolicy>> {
    vec![
        Box::new(LocalOnly {
            preemptive: config.preemptive,
        }),
        Box::new(RandomOffload {
            config: RandomOffloadConfig {
                seed,
                preemptive: config.preemptive,
                ..RandomOffloadConfig::default()
            },
        }),
        Box::new(BroadcastBidding {
            config: BiddingConfig {
                preemptive: config.preemptive,
                ..BiddingConfig::default()
            },
        }),
        Box::new(GlobalHeft {
            preemptive: config.preemptive,
        }),
        Box::new(CentralizedOracle {
            preemptive: config.preemptive,
        }),
    ]
}

/// Runs RTDS plus all five baselines on the same workload.
pub fn policy_comparison(
    network: &Network,
    jobs: &[Job],
    config: RtdsConfig,
    seed: u64,
) -> Vec<ComparisonRow> {
    let mut rows = vec![comparison_row("rtds", network, jobs, config, seed)];
    for policy in baseline_policies(&config, seed) {
        rows.push(ComparisonRow::from_policy(
            policy.name(),
            &policy.run(network, jobs),
        ));
    }
    rows
}

/// Runs `work` for every element of `inputs` in parallel (one scoped thread
/// per input — sweeps are small) and returns the results in input order.
/// Each unit of work is itself a deterministic single-threaded simulation, so
/// the sweep as a whole is reproducible.
pub fn parallel_sweep<I, O, F>(inputs: Vec<I>, work: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    std::thread::scope(|scope| {
        let work = &work;
        let handles: Vec<_> = inputs
            .into_iter()
            .map(|input| scope.spawn(move || work(input)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtds_net::generators::{ring, DelayDistribution};

    #[test]
    fn workload_is_reproducible_and_respects_hotspots() {
        let net = ring(8, DelayDistribution::Constant(1.0), 0);
        let spec = WorkloadSpec {
            hotspots: 2,
            ..WorkloadSpec::default()
        };
        let a = workload(&net, spec);
        let b = workload(&net, spec);
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty());
        assert!(a.iter().all(|j| j.arrival_site < 2));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.arrival_site, y.arrival_site);
            assert_eq!(x.params, y.params);
        }
    }

    #[test]
    fn comparison_runs_all_policies() {
        let net = ring(6, DelayDistribution::Constant(1.0), 0);
        let jobs = workload(
            &net,
            WorkloadSpec {
                rate: 0.02,
                horizon: 100.0,
                ..WorkloadSpec::default()
            },
        );
        let rows = policy_comparison(&net, &jobs, RtdsConfig::default(), 1);
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().any(|r| r.policy == "global-heft"));
        assert!(rows.iter().all(|r| r.misses == 0));
        assert!(rows.iter().all(|r| r.submitted == jobs.len() as u64));
        // Header and rows render with consistent widths.
        assert!(!comparison_header().is_empty());
        for r in &rows {
            assert!(r.render().contains(&r.policy));
        }
    }

    #[test]
    fn parallel_sweep_preserves_order() {
        let out = parallel_sweep(vec![3u64, 1, 2], |x| x * 10);
        assert_eq!(out, vec![30, 10, 20]);
        let empty: Vec<u64> = parallel_sweep(Vec::<u64>::new(), |x| x);
        assert!(empty.is_empty());
    }
}
