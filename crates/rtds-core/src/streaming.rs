//! Open-loop streaming execution: jobs are pulled on demand as the clock
//! advances, and per-job state is harvested and released behind the clock.
//!
//! [`RtdsSystem::run`] materializes the whole workload up front: every job
//! sits in the event heap, every committed reservation is kept forever (the
//! final report reads completion times out of the accumulated plans), and a
//! million-job run needs memory for a million jobs. This module adds the
//! production-shaped alternative:
//!
//! * a [`JobSource`] yields jobs lazily in arrival order (the `rtds-workload`
//!   crate provides open-loop generators and trace replayers; any sorted
//!   `Vec<Job>` iterator works too),
//! * [`RtdsSystem::run_streaming`] drives the engine's pull-based
//!   [`rtds_sim::engine::ArrivalSource`] integration in *harvest chunks*: it
//!   simulates a bounded slice of time, then prunes every committed
//!   reservation that lies wholly in the past
//!   ([`rtds_sched::SchedulePlan::drain_completed`]) while folding the
//!   drained completion times into aggregate statistics, and finalizes every
//!   job whose deadline has passed — so the resident state is bounded by the
//!   *in-flight* work, not by the length of the run,
//! * the result is a [`StreamReport`]: the same guarantee/overhead counters
//!   as [`crate::system::RunReport`] in aggregate form (no per-job vector),
//!   plus the memory high-water marks that prove the boundedness claim.
//!
//! Determinism: the streaming path processes the exact same events in the
//! exact same order as a pre-materialized run of the same jobs (external
//! arrivals outrank deliveries/timers at equal timestamps — see
//! [`rtds_sim::event`]), and pruning only removes reservations no admission
//! or validation test can ever look at again (those examine `[now, ·)`
//! windows only). Two streaming runs of the same source are bit-identical,
//! which is what makes trace record/replay reproducible to the byte.

use crate::messages::RtdsMsg;
use crate::node::RtdsNode;
use crate::snapshot::{self as snap, STREAM_SNAPSHOT_SCHEMA};
use crate::system::RtdsSystem;
use rtds_graph::{Job, JobId};
use rtds_metrics::{MetricsRegistry, Scope};
use rtds_net::SiteId;
use rtds_sched::Scheduler;
use rtds_sim::engine::ArrivalSource;
use rtds_sim::json::Json;
use rtds_sim::snapshot as sim_snap;
use rtds_sim::snapshot::SnapshotError;
use rtds_sim::stats::{GuaranteeStats, SimStats};
use rtds_sim::Simulator;
use std::collections::BTreeMap;

/// A pull-based stream of jobs in non-decreasing `arrival_time` order.
pub trait JobSource {
    /// The next job, or `None` when the workload is exhausted.
    fn next_job(&mut self) -> Option<Job>;

    /// Hands over the telemetry the source accumulated while generating
    /// jobs (inter-arrival jitter, size mixes, …), resetting it. The
    /// streaming runner merges this into [`StreamReport::metrics`] at the
    /// end of the run. Sources without instrumentation return an empty
    /// registry (the default).
    fn take_metrics(&mut self) -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

/// Any job iterator is a source (used to stream pre-materialized workloads,
/// e.g. in the streaming-vs-batch equivalence tests).
impl JobSource for std::vec::IntoIter<Job> {
    fn next_job(&mut self) -> Option<Job> {
        self.next()
    }
}

/// Tuning of the streaming loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamOptions {
    /// Simulated time between harvests (plan pruning + job finalization).
    /// Smaller values bound memory tighter at slightly more bookkeeping.
    pub harvest_interval: f64,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            harvest_interval: 25.0,
        }
    }
}

/// Aggregate report of one streaming run. Every field is a pure function of
/// the job stream and the seeds — there is no per-job vector, so the report
/// itself is O(1) in the number of jobs.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReport {
    /// Outcome counters. `submitted` counts injected arrivals (like
    /// [`crate::system::RunReport::jobs_submitted`]); `rejected` is
    /// `submitted - accepted`, so arrivals lost to site crashes count as
    /// rejections, matching the batch path.
    pub guarantee: GuaranteeStats,
    /// Engine and protocol counters.
    pub stats: SimStats,
    /// Final simulated time.
    pub finished_at: f64,
    /// Events processed by the engine.
    pub events_processed: u64,
    /// Distribution messages per submitted job.
    pub messages_per_job: f64,
    /// Mean slack (deadline minus completion) over on-time completions.
    pub mean_slack: f64,
    /// Minimum slack over on-time completions (0 when none completed).
    pub min_slack: f64,
    /// High-water mark of jobs submitted but not yet finalized — the
    /// "resident job count" a bounded-memory run keeps far below the total.
    pub peak_inflight_jobs: u64,
    /// High-water mark of committed reservations at any single site,
    /// sampled at harvest points (pruning keeps this near the active
    /// window instead of the whole history).
    pub peak_plan_reservations: u64,
    /// High-water mark of pending engine events, sampled at harvest points.
    pub peak_queue_len: u64,
    /// Number of harvest passes performed.
    pub harvests: u64,
    /// Accepted jobs finalized without a recorded completion (a protocol
    /// invariant violation — must stay zero).
    pub unharvested_completions: u64,
    /// The full telemetry registry: the protocol instruments of
    /// [`StreamReport::stats`] plus the harvest-side end-to-end histograms
    /// (`response_time`, `completion_slack`), the workload-source
    /// instruments ([`JobSource::take_metrics`]) and the memory high-water
    /// gauges (`inflight_jobs`, `queue_len`, per-site `plan_reservations`).
    /// Deterministic — a pure function of the job stream and the seeds.
    pub metrics: MetricsRegistry,
}

impl StreamReport {
    /// Guarantee ratio of the run.
    pub fn guarantee_ratio(&self) -> f64 {
        self.guarantee.guarantee_ratio()
    }

    /// Accepted jobs that missed their deadline (must stay zero).
    pub fn deadline_misses(&self) -> u64 {
        self.guarantee.deadline_misses
    }
}

/// When a checkpointable streaming run should pause
/// ([`RtdsSystem::run_streaming_checkpoint`]).
///
/// The pause is taken at the first *harvest boundary* at or past the given
/// point, never mid-chunk — harvest boundaries are the only instants where
/// the loop's state is fully explicit (no borrowed adapter, no half-drained
/// plans), and their cadence is a pure function of the job stream, so the
/// pause point is deterministic and resuming reproduces the uninterrupted
/// run byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StreamPause {
    /// Pause at the first harvest boundary with simulated time `>=` this.
    AtTime(f64),
    /// Pause at the first harvest boundary with at least this many engine
    /// events processed.
    AfterEvents(u64),
}

/// Outcome of [`RtdsSystem::run_streaming_checkpoint`]: either the run
/// drained before reaching the pause point, or it paused and handed back a
/// serialized `rtds-stream-snapshot/1` document for
/// [`RtdsSystem::resume_streaming`].
#[derive(Debug, Clone, PartialEq)]
pub enum StreamRun {
    /// The run paused; the string is the checkpoint document.
    Paused(String),
    /// The workload drained to quiescence before the pause point. Boxed:
    /// a report is an order of magnitude larger than the checkpoint
    /// string's stack footprint.
    Finished(Box<StreamReport>),
}

/// Per-job bookkeeping between injection and finalization.
struct Pending {
    arrival: f64,
    deadline: f64,
    accepted: bool,
}

/// Accumulators of the harvest loop.
#[derive(Default)]
struct HarvestState {
    inflight: BTreeMap<JobId, Pending>,
    completions: BTreeMap<JobId, f64>,
    injected: u64,
    completed_on_time: u64,
    misses: u64,
    unharvested: u64,
    slack_sum: f64,
    slack_min: f64,
    peak_inflight: u64,
    peak_plan: u64,
    peak_queue: u64,
    harvests: u64,
    /// Harvest-side telemetry (end-to-end histograms, per-site plan
    /// gauges); merged into [`StreamReport::metrics`] at the end. Kept out
    /// of the engine's [`SimStats`] so the protocol-level statistics stay
    /// event-for-event identical to a batch run of the same jobs.
    metrics: MetricsRegistry,
}

/// Adapter from a [`JobSource`] to the engine's [`ArrivalSource`]: pulls one
/// job ahead, registers injected jobs in the in-flight table and validates
/// the stream ordering.
struct StreamAdapter<'a> {
    source: &'a mut dyn JobSource,
    buffered: &'a mut Option<Job>,
    inflight: &'a mut BTreeMap<JobId, Pending>,
    injected: &'a mut u64,
    peak_inflight: &'a mut u64,
    site_count: usize,
}

impl ArrivalSource<RtdsMsg> for StreamAdapter<'_> {
    fn peek_time(&mut self) -> Option<f64> {
        self.buffered.as_ref().map(|j| j.arrival_time.max(0.0))
    }

    fn take(&mut self) -> Option<(f64, SiteId, RtdsMsg)> {
        let job = self.buffered.take()?;
        *self.buffered = self.source.next_job();
        if let Some(next) = self.buffered.as_ref() {
            assert!(
                next.arrival_time >= job.arrival_time,
                "job source must be sorted by arrival time ({} after {})",
                next.arrival_time,
                job.arrival_time
            );
        }
        assert!(
            job.arrival_site < self.site_count,
            "arrival site {} does not exist",
            job.arrival_site
        );
        *self.injected += 1;
        self.inflight.insert(
            job.id,
            Pending {
                arrival: job.arrival_time.max(0.0),
                deadline: job.deadline(),
                accepted: false,
            },
        );
        *self.peak_inflight = (*self.peak_inflight).max(self.inflight.len() as u64);
        let time = job.arrival_time.max(0.0);
        let site = SiteId(job.arrival_site);
        Some((time, site, RtdsMsg::JobArrival { job }))
    }
}

/// One harvest pass: absorb acceptance records, drain reservations that
/// completed by `cutoff`, and finalize every job whose deadline has passed
/// (all of an accepted job's reservations end by its deadline, so its
/// completion is fully known once the clock passes it).
fn harvest(sim: &mut Simulator<RtdsNode>, cutoff: f64, st: &mut HarvestState) {
    st.harvests += 1;
    st.peak_queue = st.peak_queue.max(sim.queue_len() as u64);
    let site_count = sim.network().site_count();
    for s in 0..site_count {
        let node = sim.node_mut(SiteId(s));
        st.peak_plan = st.peak_plan.max(node.plan_len() as u64);
        st.metrics.gauge_set_scoped(
            "plan_reservations",
            Scope::Site(s as u32),
            node.plan_len() as f64,
        );
        // Multicore-only gauges: on default (degenerate) bundles these are
        // omitted entirely so the metrics JSON stays byte-identical to the
        // single-capacity engine.
        if !node.scheduler().resources().is_degenerate() {
            st.metrics.gauge_set_scoped(
                "core_busy",
                Scope::Site(s as u32),
                node.scheduler().busy_cores(cutoff) as f64,
            );
            st.metrics.gauge_set_scoped(
                "mem_used",
                Scope::Site(s as u32),
                node.scheduler().mem_used(cutoff),
            );
        }
        for accepted in std::mem::take(&mut node.accepted) {
            if let Some(pending) = st.inflight.get_mut(&accepted.job) {
                pending.accepted = true;
            }
        }
        for placement in node.drain_completed(cutoff) {
            let latest = st
                .completions
                .entry(placement.reservation.job)
                .or_insert(f64::NEG_INFINITY);
            if placement.reservation.end > *latest {
                *latest = placement.reservation.end;
            }
        }
    }
    let due: Vec<JobId> = st
        .inflight
        .iter()
        .filter(|(_, p)| p.deadline <= cutoff + 1e-9)
        .map(|(id, _)| *id)
        .collect();
    for id in due {
        let pending = st.inflight.remove(&id).expect("listed above");
        let completion = st.completions.remove(&id);
        if !pending.accepted {
            // Rejected (or lost to faults): counted via the guarantee
            // counters; nothing to harvest.
            continue;
        }
        match completion {
            Some(c) if c <= pending.deadline + 1e-9 => {
                st.completed_on_time += 1;
                let slack = pending.deadline - c;
                st.slack_sum += slack;
                if slack < st.slack_min {
                    st.slack_min = slack;
                }
                st.metrics.record("response_time", c - pending.arrival);
                st.metrics.record("completion_slack", slack);
            }
            Some(c) => {
                st.misses += 1;
                st.metrics.record("response_time", c - pending.arrival);
                st.metrics.record("completion_slack", pending.deadline - c);
            }
            None => st.unharvested += 1,
        }
    }
}

/// The harvest accumulators as a snapshot document fragment. All floats as
/// bit patterns; the in-flight and completion tables in `BTreeMap` (job id)
/// order, which is deterministic.
fn encode_harvest(st: &HarvestState) -> Json {
    Json::object(vec![
        (
            "inflight",
            Json::Array(
                st.inflight
                    .iter()
                    .map(|(id, p)| {
                        Json::Array(vec![
                            snap::encode_job_id(*id),
                            sim_snap::f64_bits(p.arrival),
                            sim_snap::f64_bits(p.deadline),
                            Json::Bool(p.accepted),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "completions",
            Json::Array(
                st.completions
                    .iter()
                    .map(|(id, c)| {
                        Json::Array(vec![snap::encode_job_id(*id), sim_snap::f64_bits(*c)])
                    })
                    .collect(),
            ),
        ),
        ("injected", Json::UInt(st.injected)),
        ("completed_on_time", Json::UInt(st.completed_on_time)),
        ("misses", Json::UInt(st.misses)),
        ("unharvested", Json::UInt(st.unharvested)),
        ("slack_sum", sim_snap::f64_bits(st.slack_sum)),
        ("slack_min", sim_snap::f64_bits(st.slack_min)),
        ("peak_inflight", Json::UInt(st.peak_inflight)),
        ("peak_plan", Json::UInt(st.peak_plan)),
        ("peak_queue", Json::UInt(st.peak_queue)),
        ("harvests", Json::UInt(st.harvests)),
        ("metrics", sim_snap::encode_registry(&st.metrics)),
    ])
}

/// Inverse of [`encode_harvest`].
fn decode_harvest(doc: &Json) -> Result<HarvestState, SnapshotError> {
    let mut inflight = BTreeMap::new();
    for row in sim_snap::get_items(doc, "inflight")? {
        let cells = sim_snap::as_items(row, "inflight row")?;
        if cells.len() != 4 {
            return Err(SnapshotError(format!(
                "inflight row has {} cells, want 4",
                cells.len()
            )));
        }
        let accepted = match &cells[3] {
            Json::Bool(b) => *b,
            other => {
                return Err(SnapshotError(format!(
                    "inflight accepted flag is {other:?}, want bool"
                )))
            }
        };
        inflight.insert(
            snap::decode_job_id(&cells[0], "inflight job id")?,
            Pending {
                arrival: sim_snap::f64_from_bits(&cells[1], "inflight arrival")?,
                deadline: sim_snap::f64_from_bits(&cells[2], "inflight deadline")?,
                accepted,
            },
        );
    }
    let mut completions = BTreeMap::new();
    for row in sim_snap::get_items(doc, "completions")? {
        let cells = sim_snap::as_items(row, "completion row")?;
        if cells.len() != 2 {
            return Err(SnapshotError(format!(
                "completion row has {} cells, want 2",
                cells.len()
            )));
        }
        completions.insert(
            snap::decode_job_id(&cells[0], "completion job id")?,
            sim_snap::f64_from_bits(&cells[1], "completion time")?,
        );
    }
    let mut metrics = MetricsRegistry::new();
    sim_snap::decode_registry_into(&mut metrics, sim_snap::get(doc, "metrics")?)?;
    Ok(HarvestState {
        inflight,
        completions,
        injected: sim_snap::get_u64(doc, "injected")?,
        completed_on_time: sim_snap::get_u64(doc, "completed_on_time")?,
        misses: sim_snap::get_u64(doc, "misses")?,
        unharvested: sim_snap::get_u64(doc, "unharvested")?,
        slack_sum: sim_snap::get_f64(doc, "slack_sum")?,
        slack_min: sim_snap::get_f64(doc, "slack_min")?,
        peak_inflight: sim_snap::get_u64(doc, "peak_inflight")?,
        peak_plan: sim_snap::get_u64(doc, "peak_plan")?,
        peak_queue: sim_snap::get_u64(doc, "peak_queue")?,
        harvests: sim_snap::get_u64(doc, "harvests")?,
        metrics,
    })
}

impl RtdsSystem {
    /// Runs an open-loop workload to exhaustion and quiescence, pulling each
    /// job from `source` only when the clock reaches its arrival and
    /// releasing per-job state as deadlines pass. Memory is bounded by the
    /// in-flight work (see [`StreamReport::peak_inflight_jobs`]), so run
    /// length is limited by time, not by workload size.
    ///
    /// Faults scheduled via [`RtdsSystem::schedule_fault`] apply exactly as
    /// in the batch path. The event cap ([`RtdsSystem::set_max_events`])
    /// stops both the engine and the arrival pull.
    pub fn run_streaming(
        &mut self,
        source: &mut dyn JobSource,
        options: &StreamOptions,
    ) -> StreamReport {
        let mut buffered = source.next_job();
        let mut st = HarvestState {
            slack_min: f64::INFINITY,
            ..HarvestState::default()
        };
        let paused = self.drive_streaming(source, options, &mut st, &mut buffered, None);
        debug_assert!(!paused, "no pause requested");
        self.finish_streaming(source, st)
    }

    /// Like [`RtdsSystem::run_streaming`], but pauses at the first harvest
    /// boundary past `pause` and returns the serialized checkpoint
    /// (`rtds-stream-snapshot/1`). If the workload drains first, the run
    /// finishes normally — a finishing run is never truncated into a pause.
    ///
    /// Feeding the checkpoint and a **fresh instance of the same job
    /// source** to [`RtdsSystem::resume_streaming`] yields a
    /// [`StreamReport`] byte-identical to the uninterrupted run's.
    pub fn run_streaming_checkpoint(
        &mut self,
        source: &mut dyn JobSource,
        options: &StreamOptions,
        pause: &StreamPause,
    ) -> StreamRun {
        let mut buffered = source.next_job();
        let mut st = HarvestState {
            slack_min: f64::INFINITY,
            ..HarvestState::default()
        };
        if self.drive_streaming(source, options, &mut st, &mut buffered, Some(pause)) {
            StreamRun::Paused(self.stream_checkpoint_doc(options, &st, &buffered).render())
        } else {
            StreamRun::Finished(Box::new(self.finish_streaming(source, st)))
        }
    }

    /// Resumes a run paused by [`RtdsSystem::run_streaming_checkpoint`] and
    /// drives it to completion. `source` must be a fresh instance of the
    /// source the paused run used: the resume discards the jobs the paused
    /// run already pulled (re-accumulating the source's own telemetry
    /// identically) and continues from the serialized look-ahead job, so the
    /// source must be deterministic — which every `rtds-workload` generator
    /// and trace replayer is.
    pub fn resume_streaming(
        text: &str,
        source: &mut dyn JobSource,
    ) -> Result<StreamReport, SnapshotError> {
        let doc = Json::parse(text)
            .map_err(|e| SnapshotError(format!("stream checkpoint does not parse: {e:?}")))?;
        let schema = sim_snap::as_str(sim_snap::get(&doc, "schema")?, "schema")?;
        if schema != STREAM_SNAPSHOT_SCHEMA {
            return Err(SnapshotError(format!(
                "unsupported stream snapshot schema {schema:?}, want {STREAM_SNAPSHOT_SCHEMA:?}"
            )));
        }
        let options = StreamOptions {
            harvest_interval: sim_snap::get_f64(&doc, "harvest_interval")?,
        };
        let pulls = sim_snap::get_u64(&doc, "pulls")?;
        let mut buffered = match sim_snap::get(&doc, "buffered")? {
            Json::Null => None,
            job => Some(snap::decode_job(job)?),
        };
        let mut st = decode_harvest(sim_snap::get(&doc, "harvest")?)?;
        let mut system = RtdsSystem::resume_doc(sim_snap::get(&doc, "system")?)?;
        // Fast-forward the fresh source past everything the paused run
        // pulled (the one-ahead look-ahead plus one pull per injected job).
        for _ in 0..pulls {
            source.next_job();
        }
        let paused = system.drive_streaming(source, &options, &mut st, &mut buffered, None);
        debug_assert!(!paused, "no pause requested");
        Ok(system.finish_streaming(source, st))
    }

    /// The harvest loop shared by the plain, checkpointing and resuming
    /// paths. Returns `true` when it stopped at a pause point (state fully
    /// captured in `st` and `buffered`), `false` when the run drained to
    /// quiescence or hit the event cap.
    fn drive_streaming(
        &mut self,
        source: &mut dyn JobSource,
        options: &StreamOptions,
        st: &mut HarvestState,
        buffered: &mut Option<Job>,
        pause: Option<&StreamPause>,
    ) -> bool {
        assert!(
            options.harvest_interval.is_finite() && options.harvest_interval > 0.0,
            "harvest interval must be positive and finite, got {}",
            options.harvest_interval
        );
        let site_count = self.network().site_count();
        loop {
            let target = match buffered.as_ref() {
                // Chunk to the harvest cadence, but never stall short of the
                // next arrival: with an idle engine the chunk must reach it.
                Some(job) => (self.sim().now() + options.harvest_interval).max(job.arrival_time),
                None => f64::INFINITY,
            };
            let before = self.sim().events_processed();
            {
                let mut adapter = StreamAdapter {
                    source,
                    buffered,
                    inflight: &mut st.inflight,
                    injected: &mut st.injected,
                    peak_inflight: &mut st.peak_inflight,
                    site_count,
                };
                self.sim_mut().run_streaming(&mut adapter, target);
            }
            let now = self.sim().now();
            harvest(self.sim_mut(), now, st);
            let quiescent = self.sim().queue_len() == 0;
            if buffered.is_none() && quiescent {
                return false;
            }
            if self.sim().events_processed() == before {
                // No progress with work left: the event cap was reached.
                return false;
            }
            // Pause only after the termination checks: a run that would
            // finish inside this chunk finishes instead of pausing.
            if let Some(pause) = pause {
                let reached = match *pause {
                    StreamPause::AtTime(t) => self.sim().now() >= t,
                    StreamPause::AfterEvents(n) => self.sim().events_processed() >= n,
                };
                if reached {
                    return true;
                }
            }
        }
    }

    /// The paused loop as a `rtds-stream-snapshot/1` document: the loop's
    /// own accumulators plus the full system checkpoint. `pulls` counts
    /// calls to [`JobSource::next_job`] so far (the initial look-ahead plus
    /// one per injected job) — resume discards that many jobs from a fresh
    /// source.
    fn stream_checkpoint_doc(
        &self,
        options: &StreamOptions,
        st: &HarvestState,
        buffered: &Option<Job>,
    ) -> Json {
        Json::object(vec![
            ("schema", Json::str(STREAM_SNAPSHOT_SCHEMA)),
            (
                "harvest_interval",
                sim_snap::f64_bits(options.harvest_interval),
            ),
            ("pulls", Json::UInt(1 + st.injected)),
            (
                "buffered",
                match buffered {
                    Some(job) => snap::encode_job(job),
                    None => Json::Null,
                },
            ),
            ("harvest", encode_harvest(st)),
            ("system", self.checkpoint_doc()),
        ])
    }

    /// Final harvest and report assembly, shared by every streaming path.
    fn finish_streaming(
        &mut self,
        source: &mut dyn JobSource,
        mut st: HarvestState,
    ) -> StreamReport {
        // Final pass: drain every remaining reservation and settle every
        // remaining job (reservations may extend past the last event time).
        harvest(self.sim_mut(), f64::INFINITY, &mut st);

        let mut guarantee = GuaranteeStats::default();
        for node in self.sim().nodes() {
            guarantee.merge(&node.guarantee);
        }
        guarantee.submitted = st.injected;
        guarantee.rejected = st.injected.saturating_sub(guarantee.accepted());
        guarantee.completed_on_time = st.completed_on_time;
        guarantee.deadline_misses = st.misses;
        let stats = self.sim().stats().clone();
        let messages_per_job = if st.injected > 0 {
            stats.named("distribution_messages") as f64 / st.injected as f64
        } else {
            0.0
        };
        let (mean_slack, min_slack) = if st.completed_on_time > 0 {
            (st.slack_sum / st.completed_on_time as f64, st.slack_min)
        } else {
            (0.0, 0.0)
        };
        // Report-level telemetry: protocol instruments + harvest histograms
        // + workload-source instruments + the memory high-water gauges that
        // prove the boundedness claim. Merge order is irrelevant (the
        // registry merge is commutative), so the result is byte-identical
        // to a batch run's histograms for the same jobs.
        let mut metrics = stats.metrics().clone();
        metrics.merge(&st.metrics);
        metrics.merge(&source.take_metrics());
        metrics.gauge_set("inflight_jobs", st.peak_inflight as f64);
        metrics.gauge_set("queue_len", st.peak_queue as f64);
        StreamReport {
            guarantee,
            finished_at: self.sim().now(),
            events_processed: self.sim().events_processed(),
            messages_per_job,
            mean_slack,
            min_slack,
            peak_inflight_jobs: st.peak_inflight,
            peak_plan_reservations: st.peak_plan,
            peak_queue_len: st.peak_queue,
            harvests: st.harvests,
            unharvested_completions: st.unharvested,
            stats,
            metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RtdsConfig;
    use crate::system::JobOutcomeKind;
    use rtds_graph::generators::{DagGenerator, GeneratorConfig};
    use rtds_net::generators::{grid, DelayDistribution};

    fn workload(count: usize, seed: u64) -> Vec<Job> {
        let mut generator = DagGenerator::new(
            GeneratorConfig {
                task_count: 6,
                ..GeneratorConfig::default()
            },
            seed,
        );
        (0..count)
            .map(|i| generator.generate_job(i % 9, 1.0 + i as f64 * 3.0))
            .collect()
    }

    fn fresh_system(seed: u64) -> RtdsSystem {
        let net = grid(3, 3, false, DelayDistribution::Constant(1.0), seed);
        RtdsSystem::new(net, RtdsConfig::default(), seed)
    }

    #[test]
    fn streaming_matches_the_batch_path() {
        let jobs = workload(40, 5);
        let mut batch = fresh_system(1);
        batch.submit_workload(jobs.clone());
        let batch_report = batch.run();

        let mut streaming = fresh_system(1);
        let mut source = jobs.clone().into_iter();
        let stream_report = streaming.run_streaming(&mut source, &StreamOptions::default());

        assert_eq!(
            stream_report.guarantee.submitted,
            batch_report.jobs_submitted
        );
        assert_eq!(
            stream_report.guarantee.accepted_locally,
            batch_report.guarantee.accepted_locally
        );
        assert_eq!(
            stream_report.guarantee.accepted_distributed,
            batch_report.guarantee.accepted_distributed
        );
        assert_eq!(stream_report.events_processed, batch.events_processed());
        assert_eq!(stream_report.finished_at, batch_report.finished_at);
        assert_eq!(stream_report.stats, batch_report.stats);
        assert_eq!(stream_report.deadline_misses(), 0);
        assert_eq!(stream_report.unharvested_completions, 0);
        assert_eq!(
            stream_report.guarantee.completed_on_time,
            batch_report.guarantee.completed_on_time
        );
        // Slack aggregates match the per-job report (associativity of the
        // sums differs, hence the tolerance).
        let mut slack_sum = 0.0;
        let mut slack_min = f64::INFINITY;
        let mut on_time = 0u64;
        for job in &batch_report.jobs {
            if matches!(
                job.outcome,
                JobOutcomeKind::AcceptedLocally | JobOutcomeKind::AcceptedDistributed
            ) {
                if let Some(c) = job.completion {
                    slack_sum += job.deadline - c;
                    slack_min = slack_min.min(job.deadline - c);
                    on_time += 1;
                }
            }
        }
        assert_eq!(stream_report.guarantee.completed_on_time, on_time);
        assert!((stream_report.mean_slack - slack_sum / on_time as f64).abs() < 1e-6);
        assert!((stream_report.min_slack - slack_min).abs() < 1e-9);
        // The telemetry histograms agree sample-for-sample: the protocol
        // instruments ride in `stats` (asserted equal above) and the
        // end-to-end histograms are recorded incrementally by the harvest
        // loop vs. in one batch fold — merge commutativity makes them
        // bit-identical anyway.
        for name in ["response_time", "completion_slack", "accept_latency"] {
            assert_eq!(
                stream_report.metrics.histogram(name),
                batch_report.metrics.histogram(name),
                "{name}"
            );
            assert!(!stream_report.metrics.histogram(name).is_empty(), "{name}");
        }
        // The boundedness gauges exist only on the streaming side.
        assert!(stream_report.metrics.gauge("inflight_jobs").is_some());
        assert!(batch_report.metrics.gauge("inflight_jobs").is_none());
    }

    #[test]
    fn streaming_is_deterministic() {
        let run = || {
            let mut system = fresh_system(3);
            let mut source = workload(60, 9).into_iter();
            system.run_streaming(&mut source, &StreamOptions::default())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn resident_state_stays_bounded() {
        // 300 well-spaced jobs: at any instant only a handful are in flight,
        // and pruning keeps every plan far below 300 * tasks reservations.
        let jobs = workload(300, 11);
        let total = jobs.len() as u64;
        let mut system = fresh_system(2);
        let mut source = jobs.into_iter();
        let report = system.run_streaming(
            &mut source,
            &StreamOptions {
                harvest_interval: 20.0,
            },
        );
        assert_eq!(report.guarantee.submitted, total);
        assert!(report.harvests > 10);
        assert!(
            report.peak_inflight_jobs < total / 4,
            "peak in-flight {} vs {} total",
            report.peak_inflight_jobs,
            total
        );
        assert!(
            report.peak_plan_reservations < 6 * total / 4,
            "peak plan {}",
            report.peak_plan_reservations
        );
        assert_eq!(report.deadline_misses(), 0);
        assert_eq!(report.unharvested_completions, 0);
        // Every node's plan was fully drained by the final harvest.
        for s in 0..system.network().site_count() {
            assert!(system.node(SiteId(s)).plan_is_empty());
        }
    }

    #[test]
    fn streaming_checkpoint_mid_transfer_resumes_identically() {
        // The streaming checkpoint must capture in-flight shared-bandwidth
        // transfers: pause a volume-decorated stream at an instant with a
        // flow mid-transfer, resume from the text with a fresh source, and
        // the final report must equal the uninterrupted run's.
        // A heavy chain fills site 1, then a volume-decorated fork-join at
        // the same site must distribute — shipping its branch inputs through
        // the flow plane (the batch-path flow test's construction, arriving
        // as a stream). Harvest chunks never stall short of the next
        // arrival, so a trickle of tiny filler jobs keeps the chunk
        // boundaries — the only legal pause instants — dense enough to land
        // inside a transfer window.
        let flow_jobs = || -> Vec<Job> {
            use rtds_graph::{JobParams, TaskGraph, TaskId};
            let mut jobs = vec![Job::new(
                JobId(0),
                TaskGraph::from_costs(&[60.0]),
                JobParams::new(0.0, 70.0),
                1,
            )];
            let mut g = TaskGraph::from_costs(&[1.0, 10.0, 10.0, 10.0, 1.0]);
            for mid in 1..=3 {
                g.add_edge_with_volume(TaskId(0), TaskId(mid), 2.0).unwrap();
                g.add_edge_with_volume(TaskId(mid), TaskId(4), 2.0).unwrap();
            }
            jobs.push(Job::new(JobId(1), g, JobParams::new(0.5, 55.5), 1));
            for j in 1..=50u64 {
                let site = [0, 2, 3, 4, 5, 6, 7, 8][(j as usize) % 8];
                let at = j as f64;
                jobs.push(Job::new(
                    JobId(100 + j),
                    TaskGraph::from_costs(&[0.2]),
                    JobParams::new(at, at + 20.0),
                    site,
                ));
            }
            jobs
        };
        let flow_system = |seed: u64| -> RtdsSystem {
            let mut net = grid(3, 3, false, DelayDistribution::Constant(1.0), seed);
            let links: Vec<_> = net.links().map(|(a, b, _)| (a, b)).collect();
            for (a, b) in links {
                net.set_link_bandwidth(a, b, 0.5).unwrap();
            }
            let config = RtdsConfig {
                data_volume_aware: true,
                flow_transfers: true,
                ..RtdsConfig::default()
            };
            RtdsSystem::new(net, config, seed)
        };

        // A fine harvest cadence so pause instants are dense enough to land
        // inside a transfer window (pauses only happen on chunk boundaries).
        let options = StreamOptions {
            harvest_interval: 0.5,
        };
        let mut plain = flow_system(1);
        let mut source = flow_jobs().into_iter();
        let reference = plain.run_streaming(&mut source, &options);
        assert!(reference.stats.named("sim_flow_finished") > 0);

        // Scan pause instants until one catches a transfer in flight — the
        // flow snapshot then carries a non-empty active-flow list.
        let mut paused_text = None;
        for t in 1..200 {
            let mut system = flow_system(1);
            let mut source = flow_jobs().into_iter();
            match system.run_streaming_checkpoint(
                &mut source,
                &options,
                &StreamPause::AtTime(t as f64),
            ) {
                StreamRun::Paused(text) => {
                    if text.contains("\"flows\": [\n") {
                        paused_text = Some(text);
                        break;
                    }
                }
                StreamRun::Finished(_) => break,
            }
        }
        let text = paused_text.expect("no pause instant caught a transfer in flight");
        assert!(text.contains("\"rtds-flow-snapshot/1\""));
        let mut fresh = flow_jobs().into_iter();
        let resumed =
            RtdsSystem::resume_streaming(&text, &mut fresh).expect("mid-transfer stream resumes");
        assert_eq!(resumed, reference);
    }

    #[test]
    #[should_panic(expected = "sorted by arrival time")]
    fn unsorted_sources_panic() {
        let mut jobs = workload(5, 1);
        jobs.reverse();
        let mut system = fresh_system(1);
        let mut source = jobs.into_iter();
        system.run_streaming(&mut source, &StreamOptions::default());
    }

    #[test]
    #[should_panic(expected = "harvest interval")]
    fn invalid_harvest_interval_panics() {
        let mut system = fresh_system(1);
        let mut source = Vec::new().into_iter();
        system.run_streaming(
            &mut source,
            &StreamOptions {
                harvest_interval: 0.0,
            },
        );
    }
}
