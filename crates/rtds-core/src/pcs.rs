//! Distributed construction of the Potential Computing Sphere (§7).
//!
//! Every site runs the interrupted Bellman–Ford exchange for `2h` phases.
//! Because the simulated network is asynchronous (per-link delays differ),
//! the phases are synchronised per neighbor: a site only advances to phase
//! `p + 1` once it has received every neighbor's phase-`p` table (a standard
//! α-synchroniser, which is exactly what "a phase is composed of send step
//! and reception of all neighbor routing tables" describes).
//!
//! The state machine is pure (no simulator types): the node layer feeds it
//! received messages and forwards the messages it emits, which keeps it
//! independently unit-testable and lets the property tests compare its result
//! against the centralized [`rtds_net::bellman_ford::phased_apsp`] reference.

use crate::snapshot as snap;
use rtds_net::routing::{RouteEntry, RoutingTable};
use rtds_net::sphere::Sphere;
use rtds_net::SiteId;
use rtds_sim::json::Json;
use rtds_sim::snapshot as sim_snap;
use rtds_sim::snapshot::SnapshotError;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Outgoing routing-update message produced by the PCS state machine.
#[derive(Debug, Clone, PartialEq)]
pub struct PcsSend {
    /// Neighbor to send to.
    pub to: SiteId,
    /// Phase this table belongs to.
    pub phase: usize,
    /// Routing-table lines — one shared snapshot per phase broadcast (every
    /// neighbor receives the same `Arc`).
    pub lines: Arc<[RouteEntry]>,
}

/// Per-site state of the §7 PCS construction.
#[derive(Debug, Clone, PartialEq)]
pub struct PcsState {
    owner: SiteId,
    neighbors: Vec<(SiteId, f64)>,
    table: RoutingTable,
    /// Total number of phases to run (`2h`).
    total_phases: usize,
    /// Phase currently being collected (1-based). `current > total_phases`
    /// means the construction is finished.
    current_phase: usize,
    /// Tables received for the current phase, keyed by sender.
    pending: BTreeMap<SiteId, Arc<[RouteEntry]>>,
    /// Tables received early for future phases.
    future: BTreeMap<usize, BTreeMap<SiteId, Arc<[RouteEntry]>>>,
    /// Sphere radius `h`.
    radius: usize,
}

impl PcsState {
    /// Creates the PCS state for a site with the given adjacency and radius.
    pub fn new(owner: SiteId, neighbors: Vec<(SiteId, f64)>, radius: usize) -> Self {
        let table = RoutingTable::initial(owner, &neighbors);
        PcsState {
            owner,
            neighbors,
            table,
            total_phases: 2 * radius,
            current_phase: 1,
            pending: BTreeMap::new(),
            future: BTreeMap::new(),
            radius,
        }
    }

    /// The messages to send at start-up: the initial table, tagged phase 1,
    /// to every neighbor. Returns an empty vector when the radius is zero
    /// (the sphere is just the site itself) or the site is isolated.
    pub fn start(&mut self) -> Vec<PcsSend> {
        if self.total_phases == 0 || self.neighbors.is_empty() {
            self.current_phase = self.total_phases + 1;
            return Vec::new();
        }
        self.broadcast(1)
    }

    /// Handles a routing update from a neighbor. Returns the messages to send
    /// in response (the next phase's broadcast, once the current phase
    /// completes).
    pub fn on_update(
        &mut self,
        from: SiteId,
        phase: usize,
        lines: Arc<[RouteEntry]>,
    ) -> Vec<PcsSend> {
        if self.is_finished() {
            return Vec::new();
        }
        if phase == self.current_phase {
            self.pending.insert(from, lines);
        } else if phase > self.current_phase {
            self.future.entry(phase).or_default().insert(from, lines);
        }
        // else: stale message from an already-completed phase; ignore.
        self.try_advance()
    }

    fn try_advance(&mut self) -> Vec<PcsSend> {
        let mut out = Vec::new();
        let mut improved: Vec<SiteId> = Vec::new();
        while !self.is_finished() && self.pending.len() == self.neighbors.len() {
            // Merge everything received in this phase, tracking which
            // destinations improved.
            improved.clear();
            let received = std::mem::take(&mut self.pending);
            for (from, lines) in received {
                let delay = self
                    .neighbors
                    .iter()
                    .find(|(n, _)| *n == from)
                    .map(|(_, d)| *d)
                    .expect("update from a non-neighbor");
                self.table.merge_tracked(from, delay, &lines, &mut improved);
            }
            self.current_phase += 1;
            if self.is_finished() {
                break;
            }
            // Pull in any messages that arrived early for the new phase.
            if let Some(early) = self.future.remove(&self.current_phase) {
                self.pending = early;
            }
            // Delta broadcast: only the lines that improved this phase. A
            // line that did not improve was broadcast at its current value
            // in the phase it last changed (or in the phase-1 full table),
            // and the §7.1 merge is monotone, so every neighbor already
            // holds a route at least as good as re-merging it would yield —
            // omitting it cannot change any table. Empty deltas are still
            // sent: the α-synchroniser needs one message per neighbor per
            // phase, so message counts (and every deterministic report
            // field) are unchanged.
            improved.sort_unstable();
            improved.dedup();
            let lines: Arc<[RouteEntry]> = improved
                .iter()
                .map(|d| *self.table.route(*d).expect("improved route exists"))
                .collect();
            out.extend(self.broadcast_lines(self.current_phase, lines));
        }
        out
    }

    fn broadcast(&self, phase: usize) -> Vec<PcsSend> {
        // One snapshot, shared by every neighbor's message.
        self.broadcast_lines(phase, self.table.lines().into())
    }

    fn broadcast_lines(&self, phase: usize, lines: Arc<[RouteEntry]>) -> Vec<PcsSend> {
        self.neighbors
            .iter()
            .map(|(n, _)| PcsSend {
                to: *n,
                phase,
                lines: Arc::clone(&lines),
            })
            .collect()
    }

    /// Returns `true` once all `2h` phases have completed.
    pub fn is_finished(&self) -> bool {
        self.current_phase > self.total_phases
    }

    /// The routing table accumulated so far.
    pub fn table(&self) -> &RoutingTable {
        &self.table
    }

    /// The Potential Computing Sphere of this site: every destination whose
    /// recorded route uses at most `h` hops. The delay diameter is the
    /// conservative over-estimate available from purely local knowledge,
    /// `max_{a,b} (δ(k,a) + δ(k,b))`.
    pub fn sphere(&self) -> Sphere {
        let members = self.table.destinations_within_hops(self.radius);
        let delays: Vec<f64> = members
            .iter()
            .map(|m| self.table.distance(*m).unwrap_or(0.0))
            .collect();
        let mut diameter = 0.0f64;
        for (i, &a) in delays.iter().enumerate() {
            for (j, &b) in delays.iter().enumerate() {
                if i != j {
                    diameter = diameter.max(a + b);
                }
            }
        }
        Sphere::new(self.owner, self.radius, members, delays, diameter)
    }

    /// Sphere radius `h`.
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Serializes the full construction state (snapshot support; see
    /// [`crate::snapshot`]).
    pub(crate) fn encode_snapshot(&self) -> Json {
        let lines_doc = |lines: &Arc<[RouteEntry]>| snap::encode_route_lines(lines);
        let pending: Vec<Json> = self
            .pending
            .iter()
            .map(|(site, lines)| Json::Array(vec![snap::encode_site(*site), lines_doc(lines)]))
            .collect();
        let future: Vec<Json> = self
            .future
            .iter()
            .map(|(phase, tables)| {
                let entries: Vec<Json> = tables
                    .iter()
                    .map(|(site, lines)| {
                        Json::Array(vec![snap::encode_site(*site), lines_doc(lines)])
                    })
                    .collect();
                Json::Array(vec![Json::UInt(*phase as u64), Json::Array(entries)])
            })
            .collect();
        Json::object(vec![
            ("owner", snap::encode_site(self.owner)),
            (
                "neighbors",
                Json::Array(
                    self.neighbors
                        .iter()
                        .map(|(n, d)| {
                            Json::Array(vec![snap::encode_site(*n), sim_snap::f64_bits(*d)])
                        })
                        .collect(),
                ),
            ),
            ("table", snap::encode_route_lines(&self.table.lines())),
            ("total_phases", Json::UInt(self.total_phases as u64)),
            ("current_phase", Json::UInt(self.current_phase as u64)),
            ("pending", Json::Array(pending)),
            ("future", Json::Array(future)),
            ("radius", Json::UInt(self.radius as u64)),
        ])
    }

    /// Inverse of [`PcsState::encode_snapshot`].
    pub(crate) fn decode_snapshot(doc: &Json) -> Result<Self, SnapshotError> {
        let parse_err = |m: &str| SnapshotError(m.to_string());
        let decode_tables =
            |j: &Json, what: &str| -> Result<BTreeMap<SiteId, Arc<[RouteEntry]>>, SnapshotError> {
                let mut tables = BTreeMap::new();
                for entry in sim_snap::as_items(j, what)? {
                    let pair = sim_snap::as_items(entry, "pending table")?;
                    if pair.len() != 2 {
                        return Err(parse_err("pending table: expected [site, lines]"));
                    }
                    tables.insert(
                        snap::decode_site(&pair[0], "pending sender")?,
                        snap::decode_route_lines(&pair[1], "pending lines")?.into(),
                    );
                }
                Ok(tables)
            };
        let owner = snap::decode_site(sim_snap::get(doc, "owner")?, "pcs owner")?;
        let neighbors = sim_snap::get_items(doc, "neighbors")?
            .iter()
            .map(|n| {
                let pair = sim_snap::as_items(n, "pcs neighbor")?;
                if pair.len() != 2 {
                    return Err(parse_err("pcs neighbor: expected [site, delay]"));
                }
                Ok((
                    snap::decode_site(&pair[0], "neighbor site")?,
                    sim_snap::f64_from_bits(&pair[1], "neighbor delay")?,
                ))
            })
            .collect::<Result<Vec<(SiteId, f64)>, SnapshotError>>()?;
        let table = RoutingTable::from_entries(
            owner,
            snap::decode_route_lines(sim_snap::get(doc, "table")?, "pcs table")?,
        );
        let mut future = BTreeMap::new();
        for entry in sim_snap::get_items(doc, "future")? {
            let pair = sim_snap::as_items(entry, "future phase")?;
            if pair.len() != 2 {
                return Err(parse_err("future phase: expected [phase, tables]"));
            }
            future.insert(
                sim_snap::as_u64(&pair[0], "future phase number")? as usize,
                decode_tables(&pair[1], "future tables")?,
            );
        }
        Ok(PcsState {
            owner,
            neighbors,
            table,
            total_phases: sim_snap::get_u64(doc, "total_phases")? as usize,
            current_phase: sim_snap::get_u64(doc, "current_phase")? as usize,
            pending: decode_tables(sim_snap::get(doc, "pending")?, "pending")?,
            future,
            radius: sim_snap::get_u64(doc, "radius")? as usize,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtds_net::bellman_ford::phased_apsp;
    use rtds_net::generators::{erdos_renyi_connected, line, ring, DelayDistribution};
    use rtds_net::Network;

    /// Drives a set of PcsStates to completion by synchronously delivering
    /// every emitted message (delivery order follows a FIFO queue, which is a
    /// valid asynchronous execution).
    fn run_pcs(net: &Network, radius: usize) -> Vec<PcsState> {
        let mut states: Vec<PcsState> = net
            .sites()
            .map(|s| PcsState::new(s, net.neighbors(s).to_vec(), radius))
            .collect();
        let mut queue: std::collections::VecDeque<(SiteId, SiteId, usize, Arc<[RouteEntry]>)> =
            std::collections::VecDeque::new();
        for s in net.sites() {
            for send in states[s.0].start() {
                queue.push_back((s, send.to, send.phase, send.lines));
            }
        }
        let mut processed = 0usize;
        while let Some((from, to, phase, lines)) = queue.pop_front() {
            processed += 1;
            assert!(processed < 1_000_000, "PCS construction did not terminate");
            for send in states[to.0].on_update(from, phase, lines) {
                queue.push_back((to, send.to, send.phase, send.lines));
            }
        }
        states
    }

    #[test]
    fn distributed_pcs_matches_centralized_reference() {
        for (net, radius) in [
            (ring(10, DelayDistribution::Constant(1.0), 0), 2usize),
            (
                line(8, DelayDistribution::Uniform { min: 1.0, max: 4.0 }, 1),
                3,
            ),
            (
                erdos_renyi_connected(
                    15,
                    0.2,
                    DelayDistribution::Uniform { min: 0.5, max: 2.0 },
                    2,
                ),
                2,
            ),
        ] {
            let states = run_pcs(&net, radius);
            let reference = phased_apsp(&net, 2 * radius);
            for s in net.sites() {
                assert!(states[s.0].is_finished(), "site {s} did not finish");
                for d in net.sites() {
                    let got = states[s.0].table().distance(d);
                    let want = reference.tables[s.0].distance(d);
                    match (got, want) {
                        (Some(g), Some(w)) => assert!(
                            (g - w).abs() < 1e-9,
                            "{s} -> {d}: distributed {g} vs reference {w}"
                        ),
                        (None, None) => {}
                        other => panic!("{s} -> {d}: mismatch {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn sphere_members_match_reference_sphere() {
        let net = ring(12, DelayDistribution::Constant(2.0), 0);
        let radius = 2;
        let states = run_pcs(&net, radius);
        let reference = phased_apsp(&net, 2 * radius);
        for s in net.sites() {
            let dist_sphere = states[s.0].sphere();
            let ref_sphere = Sphere::from_tables(&reference.tables[s.0], &reference.tables, radius);
            assert_eq!(dist_sphere.members, ref_sphere.members, "site {s}");
            // The locally computable diameter over-estimates the exact one.
            assert!(dist_sphere.delay_diameter + 1e-9 >= ref_sphere.delay_diameter);
        }
    }

    #[test]
    fn zero_radius_finishes_immediately() {
        let net = ring(4, DelayDistribution::Constant(1.0), 0);
        let mut state = PcsState::new(SiteId(0), net.neighbors(SiteId(0)).to_vec(), 0);
        assert!(state.start().is_empty());
        assert!(state.is_finished());
        let sphere = state.sphere();
        assert_eq!(sphere.members, vec![SiteId(0)]);
        assert_eq!(sphere.delay_diameter, 0.0);
    }

    #[test]
    fn isolated_site_finishes_immediately() {
        let mut state = PcsState::new(SiteId(0), vec![], 3);
        assert!(state.start().is_empty());
        assert!(state.is_finished());
        assert_eq!(state.sphere().members, vec![SiteId(0)]);
        assert_eq!(state.radius(), 3);
    }

    #[test]
    fn early_messages_are_buffered_not_lost() {
        // Two sites, one link: site 0 receives site 1's phase-2 table before
        // finishing phase 1 must still converge.
        let mut net = Network::new(2);
        net.add_link(SiteId(0), SiteId(1), 1.0).unwrap();
        let mut a = PcsState::new(SiteId(0), net.neighbors(SiteId(0)).to_vec(), 1);
        let mut b = PcsState::new(SiteId(1), net.neighbors(SiteId(1)).to_vec(), 1);
        let a_start = a.start();
        let b_start = b.start();
        assert_eq!(a_start.len(), 1);
        assert_eq!(b_start.len(), 1);
        // Deliver b's phase-1 to a: a advances and emits phase 2.
        let a_out = a.on_update(SiteId(1), 1, b_start[0].lines.clone());
        assert_eq!(a_out.len(), 1);
        assert_eq!(a_out[0].phase, 2);
        // Deliver a's phase-2 to b *before* a's phase-1: must be buffered.
        let out = b.on_update(SiteId(0), 2, a_out[0].lines.clone());
        assert!(out.is_empty());
        assert!(!b.is_finished());
        // Now deliver a's phase-1: b advances through phase 1 and, with the
        // buffered phase-2 table already present, through phase 2 as well.
        let out = b.on_update(SiteId(0), 1, a_start[0].lines.clone());
        // b emits its phase-2 broadcast while advancing.
        assert_eq!(out.len(), 1);
        assert!(b.is_finished());
        // Finish a.
        let out_b2: Vec<_> = out;
        let _ = a.on_update(SiteId(1), 2, out_b2[0].lines.clone());
        assert!(a.is_finished());
        assert_eq!(a.table().distance(SiteId(1)), Some(1.0));
        assert_eq!(b.table().distance(SiteId(0)), Some(1.0));
    }
}
