//! Structured event traces.
//!
//! Traces serve three purposes: debugging protocol implementations, asserting
//! protocol-level properties in integration tests (for example "every Enroll
//! is eventually matched by an Unlock"), and rendering the Fig. 1 algorithm
//! overview as an actual message/stage timeline in the experiment harness.

use rtds_net::SiteId;
use serde::{Deserialize, Serialize};

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Simulated time of the event.
    pub time: f64,
    /// Site that recorded it.
    pub site: SiteId,
    /// Short machine-readable kind (for example `"local-test"`,
    /// `"acs-enroll"`, `"mapping-validated"`).
    pub kind: String,
    /// Free-form human-readable detail.
    pub detail: String,
}

/// A trace recorder. Disabled recorders drop events, so tracing can stay in
/// the protocol code paths without costing anything in large experiments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Trace {
    /// A recorder that stores events.
    pub fn enabled() -> Self {
        Trace {
            enabled: true,
            events: Vec::new(),
        }
    }

    /// A recorder that drops events.
    pub fn disabled() -> Self {
        Trace {
            enabled: false,
            events: Vec::new(),
        }
    }

    /// Returns `true` if events are being stored.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op when disabled).
    pub fn record(&mut self, event: TraceEvent) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// All recorded events in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events of a given kind.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Events recorded by a given site.
    pub fn of_site(&self, site: SiteId) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.site == site)
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the trace as aligned text lines (used by the Fig. 1 binary).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!(
                "[{:>10.3}] {:>6}  {:<24} {}\n",
                e.time,
                e.site.to_string(),
                e.kind,
                e.detail
            ));
        }
        out
    }
}

impl Default for Trace {
    fn default() -> Self {
        Trace::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: f64, site: usize, kind: &str) -> TraceEvent {
        TraceEvent {
            time,
            site: SiteId(site),
            kind: kind.to_string(),
            detail: format!("detail-{kind}"),
        }
    }

    #[test]
    fn enabled_trace_records() {
        let mut t = Trace::enabled();
        assert!(t.is_enabled());
        assert!(t.is_empty());
        t.record(ev(1.0, 0, "local-test"));
        t.record(ev(2.0, 1, "acs-enroll"));
        t.record(ev(3.0, 0, "acs-enroll"));
        assert_eq!(t.len(), 3);
        assert_eq!(t.of_kind("acs-enroll").count(), 2);
        assert_eq!(t.of_site(SiteId(0)).count(), 2);
        let text = t.render();
        assert!(text.contains("local-test"));
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn disabled_trace_drops_events() {
        let mut t = Trace::disabled();
        assert!(!t.is_enabled());
        t.record(ev(1.0, 0, "x"));
        assert!(t.is_empty());
        assert_eq!(t.events().len(), 0);
        let d = Trace::default();
        assert!(!d.is_enabled());
    }
}
