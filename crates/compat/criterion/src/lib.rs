//! Offline stub for `criterion`.
//!
//! The build environment has no crates.io access, so this crate provides the
//! API subset the RTDS benches use — `Criterion`, `benchmark_group`,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! `criterion_group!` / `criterion_main!` — backed by a simple wall-clock
//! measurement: each benchmark body is timed over an adaptively chosen
//! iteration count and the mean per-iteration time is printed. There is no
//! statistical analysis, no warm-up model and no HTML report; the point is
//! that `cargo bench` compiles, runs, and prints comparable numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            id: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Times closures handed to it by the benchmark body.
pub struct Bencher {
    measured: Option<(u64, Duration)>,
}

impl Bencher {
    /// Runs `f` once to settle caches, then over an adaptively doubled
    /// iteration count until the measurement window is at least ~20 ms (or
    /// 4096 iterations, whichever comes first).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(20) || iters >= 4096 {
                self.measured = Some((iters, elapsed));
                return;
            }
            iters *= 2;
        }
    }
}

/// Per-iteration work declared by a benchmark, so the harness can report a
/// rate (elements or bytes per second) next to the raw time — the same API
/// as real criterion's `Throughput`.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Each iteration processes this many logical elements.
    Elements(u64),
    /// Each iteration processes this many bytes.
    Bytes(u64),
}

fn run_one(
    group: &str,
    id: &BenchmarkId,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher),
) {
    let mut bencher = Bencher { measured: None };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.id.clone()
    } else {
        format!("{}/{}", group, id.id)
    };
    match bencher.measured {
        Some((iters, elapsed)) => {
            let per_iter = elapsed.as_secs_f64() / iters as f64;
            let rate = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!(" {:>12.0} elem/s", n as f64 / per_iter)
                }
                Some(Throughput::Bytes(n)) => {
                    format!(" {:>12.0} B/s", n as f64 / per_iter)
                }
                None => String::new(),
            };
            println!(
                "bench {label:<50} {:>12.3} µs/iter ({iters} iters){rate}",
                per_iter * 1e6
            );
        }
        None => println!("bench {label:<50} (no measurement)"),
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub sizes iteration counts
    /// adaptively instead.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; ignored by the stub.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Declares the per-iteration work of subsequent benchmarks in this
    /// group; the harness prints the implied rate next to the time.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut f = f;
        run_one(&self.name, &id.into(), self.throughput, |b| f(b));
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut f = f;
        run_one(&self.name, &id.into(), self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Top-level benchmark driver, one per `criterion_group!`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut f = f;
        run_one("", &id.into(), None, |b| f(b));
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut f = f;
        run_one("", &id.into(), None, |b| f(b, input));
        self
    }

    /// No CLI handling in the stub; returns self unchanged.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&mut self) {}
}

/// Re-export so `criterion::black_box` resolves; same as `std::hint::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
