//! The simulation engine: protocols, contexts and the simulator loop.
//!
//! A *protocol* is the code running on the system-management processor of a
//! site (§2): it reacts to start-up, to message deliveries and to timers, and
//! it may send messages to neighbors or to any site it knows a route to (the
//! engine forwards along the routing substrate only in the sense of charging
//! the end-to-end delay supplied by the caller — routing decisions themselves
//! belong to the protocol, as in the paper).

use crate::event::{EventPayload, EventQueue};
use crate::stats::SimStats;
use crate::trace::{Trace, TraceEvent};
use rtds_net::{Network, SiteId};
use std::fmt::Debug;

/// Behaviour of one site. `Msg` is the wire-message type of the protocol.
pub trait Protocol: Sized {
    /// Message type exchanged between sites (and injected externally).
    type Msg: Clone + Debug + PartialEq;

    /// Called once per site before any event is processed.
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>);

    /// Called when a message is delivered to this site.
    fn on_message(&mut self, from: SiteId, msg: Self::Msg, ctx: &mut Context<'_, Self::Msg>);

    /// Called when a timer set by this site fires. The default implementation
    /// ignores timers.
    fn on_timer(&mut self, _timer_id: u64, _ctx: &mut Context<'_, Self::Msg>) {}
}

/// Outgoing actions buffered during one handler invocation.
#[derive(Debug)]
enum Outgoing<M> {
    /// Send `msg` to `to`, charging `delay` time units. `None` delay means
    /// "use the direct link delay" and is an error if no direct link exists.
    Send {
        to: SiteId,
        msg: M,
        delay: Option<f64>,
    },
    Timer {
        delay: f64,
        timer_id: u64,
    },
}

/// Handler-side view of the simulation: lets a protocol inspect the current
/// time and topology, send messages, set timers, bump named counters and
/// record trace events.
pub struct Context<'a, M> {
    site: SiteId,
    now: f64,
    network: &'a Network,
    outgoing: Vec<Outgoing<M>>,
    stats: &'a mut SimStats,
    trace: &'a mut Trace,
}

impl<'a, M> Context<'a, M> {
    /// The site this handler runs on.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The network topology (read-only).
    pub fn network(&self) -> &Network {
        self.network
    }

    /// Neighbors of the current site with their link delays.
    pub fn neighbors(&self) -> &[(SiteId, f64)] {
        self.network.neighbors(self.site)
    }

    /// Sends a message over the *direct link* to a neighbor. The propagation
    /// delay is the link delay.
    ///
    /// # Panics
    /// Panics if `to` is not a direct neighbor — protocols must route
    /// explicitly, exactly as in the paper (messages to non-neighbors travel
    /// via the routing table, see [`Context::send_routed`]).
    pub fn send(&mut self, to: SiteId, msg: M) {
        assert!(
            self.network.has_link(self.site, to),
            "site {} has no direct link to {} — use send_routed",
            self.site,
            to
        );
        self.outgoing.push(Outgoing::Send {
            to,
            msg,
            delay: None,
        });
    }

    /// Sends a message to an arbitrary site, charging an explicit end-to-end
    /// delay (typically the minimum-delay route distance taken from a routing
    /// table). The engine models the path as a single delayed delivery; the
    /// intermediate relays belong to the management plane and are accounted
    /// for in the statistics by the caller via [`Context::count`].
    ///
    /// # Panics
    /// Panics if the delay is negative or not finite.
    pub fn send_routed(&mut self, to: SiteId, delay: f64, msg: M) {
        assert!(
            delay.is_finite() && delay >= 0.0,
            "routed delay must be finite and non-negative, got {delay}"
        );
        self.outgoing.push(Outgoing::Send {
            to,
            msg,
            delay: Some(delay),
        });
    }

    /// Sets a timer firing `delay` time units from now.
    pub fn set_timer(&mut self, delay: f64, timer_id: u64) {
        assert!(
            delay.is_finite() && delay >= 0.0,
            "timer delay must be finite and non-negative, got {delay}"
        );
        self.outgoing.push(Outgoing::Timer { delay, timer_id });
    }

    /// Increments a named statistics counter.
    pub fn count(&mut self, name: &str, amount: u64) {
        self.stats.add(name, amount);
    }

    /// Records a structured trace event for this site at the current time.
    pub fn trace(&mut self, kind: &str, detail: impl Into<String>) {
        self.trace.record(TraceEvent {
            time: self.now,
            site: self.site,
            kind: kind.to_string(),
            detail: detail.into(),
        });
    }
}

/// The discrete-event simulator: a network, one protocol instance per site,
/// an event queue and accumulated statistics.
pub struct Simulator<P: Protocol> {
    network: Network,
    nodes: Vec<P>,
    queue: EventQueue<P::Msg>,
    now: f64,
    started: bool,
    stats: SimStats,
    trace: Trace,
    max_events: u64,
    events_processed: u64,
}

impl<P: Protocol> Simulator<P> {
    /// Creates a simulator from a network and a node factory (called once per
    /// site in id order).
    pub fn new(network: Network, mut factory: impl FnMut(SiteId) -> P) -> Self {
        let nodes: Vec<P> = network.sites().map(&mut factory).collect();
        Simulator {
            network,
            nodes,
            queue: EventQueue::new(),
            now: 0.0,
            started: false,
            stats: SimStats::default(),
            trace: Trace::disabled(),
            max_events: u64::MAX,
            events_processed: 0,
        }
    }

    /// Enables structured tracing (disabled by default to keep long runs
    /// cheap).
    pub fn enable_trace(&mut self) {
        self.trace = Trace::enabled();
    }

    /// Caps the number of processed events (a safety net against protocol
    /// bugs that would otherwise loop forever).
    pub fn set_max_events(&mut self, max: u64) {
        self.max_events = max;
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The network being simulated.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Read access to a node.
    pub fn node(&self, s: SiteId) -> &P {
        &self.nodes[s.0]
    }

    /// Mutable access to a node (used by experiment drivers between runs; not
    /// available to protocols during a run).
    pub fn node_mut(&mut self, s: SiteId) -> &mut P {
        &mut self.nodes[s.0]
    }

    /// Iterator over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &P> {
        self.nodes.iter()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Structured trace (empty unless tracing was enabled).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Injects an external stimulus (for example a job arrival) at an
    /// absolute simulated time.
    pub fn inject_at(&mut self, time: f64, site: SiteId, msg: P::Msg) {
        assert!(
            time + 1e-12 >= self.now,
            "cannot inject an event in the past (now {}, requested {time})",
            self.now
        );
        self.queue
            .push(time, site, EventPayload::External { message: msg });
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            self.dispatch_with_ctx(SiteId(i), |node, ctx| node.on_start(ctx));
        }
    }

    /// Runs until the event queue is empty (or the event cap is reached).
    /// Returns the final simulated time.
    pub fn run_to_quiescence(&mut self) -> f64 {
        self.run_until(f64::INFINITY)
    }

    /// Runs until the queue is empty or the next event would fire after
    /// `horizon`. Returns the final simulated time.
    pub fn run_until(&mut self, horizon: f64) -> f64 {
        self.ensure_started();
        while let Some(next_time) = self.queue.peek_time() {
            if next_time > horizon {
                break;
            }
            if self.events_processed >= self.max_events {
                break;
            }
            let event = self.queue.pop().expect("peeked event exists");
            self.events_processed += 1;
            debug_assert!(event.time + 1e-9 >= self.now, "time went backwards");
            self.now = self.now.max(event.time);
            let target = event.target;
            match event.payload {
                EventPayload::Deliver { from, message } => {
                    self.stats.messages_delivered += 1;
                    self.dispatch_with_ctx(target, |node, ctx| node.on_message(from, message, ctx));
                }
                EventPayload::External { message } => {
                    self.dispatch_with_ctx(target, |node, ctx| {
                        node.on_message(target, message, ctx)
                    });
                }
                EventPayload::Timer { timer_id } => {
                    self.dispatch_with_ctx(target, |node, ctx| node.on_timer(timer_id, ctx));
                }
            }
        }
        self.now
    }

    fn dispatch_with_ctx(
        &mut self,
        site: SiteId,
        f: impl FnOnce(&mut P, &mut Context<'_, P::Msg>),
    ) {
        let mut ctx = Context {
            site,
            now: self.now,
            network: &self.network,
            outgoing: Vec::new(),
            stats: &mut self.stats,
            trace: &mut self.trace,
        };
        f(&mut self.nodes[site.0], &mut ctx);
        let outgoing = ctx.outgoing;
        for action in outgoing {
            match action {
                Outgoing::Send { to, msg, delay } => {
                    let delay = match delay {
                        Some(d) => d,
                        None => self
                            .network
                            .link_delay(site, to)
                            .expect("checked by Context::send"),
                    };
                    self.stats.messages_sent += 1;
                    self.queue.push(
                        self.now + delay,
                        to,
                        EventPayload::Deliver {
                            from: site,
                            message: msg,
                        },
                    );
                }
                Outgoing::Timer { delay, timer_id } => {
                    self.queue
                        .push(self.now + delay, site, EventPayload::Timer { timer_id });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtds_net::generators::{line, ring, DelayDistribution};

    /// A tiny flooding protocol: site 0 floods a token; every site records the
    /// time it first saw it and forwards it once to all neighbors.
    #[derive(Debug, Default)]
    struct Flood {
        seen_at: Option<f64>,
    }

    impl Protocol for Flood {
        type Msg = u32;

        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            if ctx.site() == SiteId(0) {
                self.seen_at = Some(ctx.now());
                let neighbors: Vec<SiteId> = ctx.neighbors().iter().map(|(n, _)| *n).collect();
                for n in neighbors {
                    ctx.send(n, 7);
                }
                ctx.count("floods", 1);
            }
        }

        fn on_message(&mut self, _from: SiteId, msg: u32, ctx: &mut Context<'_, u32>) {
            assert_eq!(msg, 7);
            if self.seen_at.is_none() {
                self.seen_at = Some(ctx.now());
                ctx.trace("first-seen", format!("t={}", ctx.now()));
                let neighbors: Vec<SiteId> = ctx.neighbors().iter().map(|(n, _)| *n).collect();
                for n in neighbors {
                    ctx.send(n, 7);
                }
            }
        }
    }

    #[test]
    fn flood_reaches_every_site_at_shortest_delay_on_a_line() {
        let net = line(5, DelayDistribution::Constant(2.0), 0);
        let mut sim = Simulator::new(net, |_| Flood::default());
        sim.enable_trace();
        let end = sim.run_to_quiescence();
        // The last event is the echo of site 4's forward arriving back at
        // site 3 (which ignores it) at t = 10.
        assert_eq!(end, 10.0);
        for (i, node) in sim.nodes().enumerate() {
            assert_eq!(node.seen_at, Some(2.0 * i as f64), "site {i}");
        }
        assert_eq!(sim.stats().named("floods"), 1);
        assert!(sim.stats().messages_sent >= 4);
        assert_eq!(sim.trace().events().len(), 4); // sites 1..4 record once
    }

    #[test]
    fn ring_flood_takes_both_directions() {
        let net = ring(6, DelayDistribution::Constant(1.0), 0);
        let mut sim = Simulator::new(net, |_| Flood::default());
        sim.run_to_quiescence();
        // On a 6-ring the farthest site is 3 hops away.
        assert_eq!(sim.node(SiteId(3)).seen_at, Some(3.0));
        assert_eq!(sim.node(SiteId(5)).seen_at, Some(1.0));
    }

    /// A protocol exercising timers and routed sends.
    #[derive(Debug, Default)]
    struct TimerEcho {
        fired: Vec<u64>,
        received: Vec<(SiteId, &'static str)>,
    }

    impl Protocol for TimerEcho {
        type Msg = &'static str;

        fn on_start(&mut self, ctx: &mut Context<'_, &'static str>) {
            if ctx.site() == SiteId(0) {
                ctx.set_timer(5.0, 1);
                ctx.set_timer(2.0, 2);
            }
        }

        fn on_message(
            &mut self,
            from: SiteId,
            msg: &'static str,
            _ctx: &mut Context<'_, &'static str>,
        ) {
            self.received.push((from, msg));
        }

        fn on_timer(&mut self, timer_id: u64, ctx: &mut Context<'_, &'static str>) {
            self.fired.push(timer_id);
            if timer_id == 1 && ctx.network().site_count() > 3 {
                // Route a message to the far end of the line, charging an
                // explicit end-to-end delay of 6.
                ctx.send_routed(SiteId(3), 6.0, "hello");
            }
        }
    }

    #[test]
    fn timers_fire_in_order_and_routed_sends_arrive() {
        let net = line(4, DelayDistribution::Constant(1.0), 0);
        let mut sim = Simulator::new(net, |_| TimerEcho::default());
        let end = sim.run_to_quiescence();
        assert_eq!(sim.node(SiteId(0)).fired, vec![2, 1]);
        assert_eq!(sim.node(SiteId(3)).received, vec![(SiteId(0), "hello")]);
        assert_eq!(end, 11.0); // timer at 5 + routed delay 6
        assert_eq!(sim.events_processed(), 3);
    }

    #[test]
    fn external_injection_behaves_like_self_message() {
        let net = line(3, DelayDistribution::Constant(1.0), 0);
        let mut sim = Simulator::new(net, |_| TimerEcho::default());
        sim.inject_at(4.0, SiteId(2), "arrival");
        sim.run_to_quiescence();
        assert_eq!(sim.node(SiteId(2)).received, vec![(SiteId(2), "arrival")]);
        assert_eq!(sim.now(), 5.0_f64.max(4.0).max(sim.now()));
    }

    #[test]
    fn run_until_respects_the_horizon() {
        let net = line(3, DelayDistribution::Constant(1.0), 0);
        let mut sim = Simulator::new(net, |_| TimerEcho::default());
        sim.inject_at(10.0, SiteId(1), "late");
        let t = sim.run_until(6.0);
        assert!(t <= 6.0);
        assert!(sim.node(SiteId(1)).received.is_empty());
        sim.run_to_quiescence();
        assert_eq!(sim.node(SiteId(1)).received.len(), 1);
    }

    #[test]
    fn event_cap_stops_runaway_protocols() {
        /// A protocol that ping-pongs forever between sites 0 and 1.
        #[derive(Debug, Default)]
        struct PingPong;
        impl Protocol for PingPong {
            type Msg = u8;
            fn on_start(&mut self, ctx: &mut Context<'_, u8>) {
                if ctx.site() == SiteId(0) {
                    ctx.send(SiteId(1), 0);
                }
            }
            fn on_message(&mut self, from: SiteId, _msg: u8, ctx: &mut Context<'_, u8>) {
                ctx.send(from, 0);
            }
        }
        let net = line(2, DelayDistribution::Constant(1.0), 0);
        let mut sim = Simulator::new(net, |_| PingPong);
        sim.set_max_events(100);
        sim.run_to_quiescence();
        assert_eq!(sim.events_processed(), 100);
    }

    #[test]
    #[should_panic(expected = "no direct link")]
    fn direct_send_to_non_neighbor_panics() {
        #[derive(Debug, Default)]
        struct Bad;
        impl Protocol for Bad {
            type Msg = u8;
            fn on_start(&mut self, ctx: &mut Context<'_, u8>) {
                if ctx.site() == SiteId(0) {
                    ctx.send(SiteId(2), 0); // not adjacent on a 3-line
                }
            }
            fn on_message(&mut self, _: SiteId, _: u8, _: &mut Context<'_, u8>) {}
        }
        let net = line(3, DelayDistribution::Constant(1.0), 0);
        let mut sim = Simulator::new(net, |_| Bad);
        sim.run_to_quiescence();
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn injecting_in_the_past_panics() {
        let net = line(2, DelayDistribution::Constant(1.0), 0);
        let mut sim = Simulator::new(net, |_| TimerEcho::default());
        sim.inject_at(3.0, SiteId(0), "x");
        sim.run_to_quiescence();
        sim.inject_at(1.0, SiteId(0), "too-late");
    }
}
