//! The weighted site graph.
//!
//! Sites are identified by dense indices ([`SiteId`]). Links are undirected
//! (the paper's bidirectional communication links) and carry a propagation
//! delay. Delays do *not* have to satisfy the triangle inequality (§2), which
//! is why minimum-delay paths between physically adjacent sites may traverse
//! several links — the routing layer handles that.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Identifier of a site (a node of the communication network).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteId(pub usize);

impl SiteId {
    /// Raw index of the site.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<usize> for SiteId {
    fn from(v: usize) -> Self {
        SiteId(v)
    }
}

/// Errors raised while building a [`Network`].
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkError {
    /// A link endpoint is not a valid site.
    UnknownSite(SiteId),
    /// A self-link was requested.
    SelfLink(SiteId),
    /// The two sites are already linked.
    DuplicateLink(SiteId, SiteId),
    /// A negative or non-finite delay was supplied.
    InvalidDelay(f64),
    /// The two sites are not linked (raised by mutation of a missing link).
    MissingLink(SiteId, SiteId),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::UnknownSite(s) => write!(f, "unknown site {s}"),
            NetworkError::SelfLink(s) => write!(f, "self link on {s}"),
            NetworkError::DuplicateLink(a, b) => write!(f, "duplicate link {a} -- {b}"),
            NetworkError::InvalidDelay(d) => write!(f, "invalid link delay {d}"),
            NetworkError::MissingLink(a, b) => write!(f, "no link {a} -- {b}"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// An arbitrary connected communication network: sites plus weighted,
/// bidirectional links.
///
/// Each site is assumed (paper §2) to consist of a computation processor and
/// a system-management processor; that distinction lives in the simulation
/// layer — the topology only records connectivity and delays, plus an
/// optional per-site relative *computing power* used by the §13
/// uniform-machines extension (1.0 for the identical-machines base model).
/// One site's adjacency: `(neighbor, delay)` pairs in insertion order
/// (which is semantic — see [`Network::raw_adjacency`]).
pub type NeighborList = Vec<(SiteId, f64)>;

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    /// `adjacency[i]` lists `(neighbor, delay)` pairs in insertion order.
    adjacency: Vec<NeighborList>,
    /// Relative computing power of every site (1.0 = reference speed).
    speeds: Vec<f64>,
    link_count: usize,
}

impl Network {
    /// Creates a network with `n` isolated sites of unit computing power.
    pub fn new(n: usize) -> Self {
        Network {
            adjacency: vec![Vec::new(); n],
            speeds: vec![1.0; n],
            link_count: 0,
        }
    }

    /// The raw adjacency lists, in per-site insertion order, plus the
    /// per-site speeds. Insertion order is semantic — neighbor iteration
    /// (and therefore protocol broadcast order) follows it — so a snapshot
    /// must capture the lists verbatim rather than re-adding links.
    pub fn raw_adjacency(&self) -> (&[NeighborList], &[f64]) {
        (&self.adjacency, &self.speeds)
    }

    /// Rebuilds a network from raw adjacency lists captured by
    /// [`Network::raw_adjacency`]. The lists must be symmetric (every
    /// `(b, d)` in `adjacency[a]` has a matching `(a, d)` in
    /// `adjacency[b]`); the link count is recomputed from them.
    ///
    /// # Panics
    /// Panics if `speeds` and `adjacency` disagree on the site count or if
    /// the directed edge count is odd (asymmetric lists).
    pub fn from_raw_adjacency(adjacency: Vec<NeighborList>, speeds: Vec<f64>) -> Self {
        assert_eq!(
            adjacency.len(),
            speeds.len(),
            "adjacency and speeds must cover the same sites"
        );
        let directed: usize = adjacency.iter().map(Vec::len).sum();
        assert!(
            directed % 2 == 0,
            "adjacency lists must be symmetric (got {directed} directed edges)"
        );
        Network {
            adjacency,
            speeds,
            link_count: directed / 2,
        }
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of (undirected) links.
    pub fn link_count(&self) -> usize {
        self.link_count
    }

    /// Iterator over all site ids.
    pub fn sites(&self) -> impl Iterator<Item = SiteId> {
        (0..self.adjacency.len()).map(SiteId)
    }

    /// Adds an undirected link with the given propagation delay.
    pub fn add_link(&mut self, a: SiteId, b: SiteId, delay: f64) -> Result<(), NetworkError> {
        let n = self.adjacency.len();
        if a.0 >= n {
            return Err(NetworkError::UnknownSite(a));
        }
        if b.0 >= n {
            return Err(NetworkError::UnknownSite(b));
        }
        if a == b {
            return Err(NetworkError::SelfLink(a));
        }
        if !(delay.is_finite() && delay >= 0.0) {
            return Err(NetworkError::InvalidDelay(delay));
        }
        if self.adjacency[a.0].iter().any(|(s, _)| *s == b) {
            return Err(NetworkError::DuplicateLink(a, b));
        }
        self.adjacency[a.0].push((b, delay));
        self.adjacency[b.0].push((a, delay));
        self.link_count += 1;
        Ok(())
    }

    /// Changes the propagation delay of an existing link (dynamic-network
    /// support: latency jitter applied by the fault-injection layer).
    pub fn set_link_delay(&mut self, a: SiteId, b: SiteId, delay: f64) -> Result<(), NetworkError> {
        let n = self.adjacency.len();
        if a.0 >= n {
            return Err(NetworkError::UnknownSite(a));
        }
        if b.0 >= n {
            return Err(NetworkError::UnknownSite(b));
        }
        if !(delay.is_finite() && delay >= 0.0) {
            return Err(NetworkError::InvalidDelay(delay));
        }
        let forward = self.adjacency[a.0].iter_mut().find(|(s, _)| *s == b);
        match forward {
            Some((_, d)) => *d = delay,
            None => return Err(NetworkError::MissingLink(a, b)),
        }
        let backward = self.adjacency[b.0]
            .iter_mut()
            .find(|(s, _)| *s == a)
            .expect("adjacency lists are symmetric");
        backward.1 = delay;
        Ok(())
    }

    /// Removes an undirected link, returning its delay (dynamic-network
    /// support: link failure applied by the fault-injection layer). Returns
    /// `None` if the link does not exist.
    pub fn remove_link(&mut self, a: SiteId, b: SiteId) -> Option<f64> {
        let n = self.adjacency.len();
        if a.0 >= n || b.0 >= n {
            return None;
        }
        let pos = self.adjacency[a.0].iter().position(|(s, _)| *s == b)?;
        let (_, delay) = self.adjacency[a.0].remove(pos);
        let rev = self.adjacency[b.0]
            .iter()
            .position(|(s, _)| *s == a)
            .expect("adjacency lists are symmetric");
        self.adjacency[b.0].remove(rev);
        self.link_count -= 1;
        Some(delay)
    }

    /// Neighbors of a site with link delays.
    pub fn neighbors(&self, s: SiteId) -> &[(SiteId, f64)] {
        &self.adjacency[s.0]
    }

    /// Neighbor ids of a site.
    pub fn neighbor_ids(&self, s: SiteId) -> impl Iterator<Item = SiteId> + '_ {
        self.adjacency[s.0].iter().map(|(n, _)| *n)
    }

    /// Degree of a site.
    pub fn degree(&self, s: SiteId) -> usize {
        self.adjacency[s.0].len()
    }

    /// Delay of the direct link between two sites, if any.
    pub fn link_delay(&self, a: SiteId, b: SiteId) -> Option<f64> {
        self.adjacency[a.0]
            .iter()
            .find(|(s, _)| *s == b)
            .map(|(_, d)| *d)
    }

    /// Returns `true` if a direct link exists between two sites.
    pub fn has_link(&self, a: SiteId, b: SiteId) -> bool {
        self.link_delay(a, b).is_some()
    }

    /// Iterator over every undirected link as `(a, b, delay)` with `a < b`.
    pub fn links(&self) -> impl Iterator<Item = (SiteId, SiteId, f64)> + '_ {
        self.sites().flat_map(move |a| {
            self.adjacency[a.0]
                .iter()
                .filter(move |(b, _)| a.0 < b.0)
                .map(move |(b, d)| (a, *b, *d))
        })
    }

    /// Relative computing power of a site (§13 uniform machines; 1.0 for the
    /// identical-machines base model).
    pub fn speed(&self, s: SiteId) -> f64 {
        self.speeds[s.0]
    }

    /// Sets the relative computing power of a site.
    ///
    /// # Panics
    /// Panics if the speed is not strictly positive.
    pub fn set_speed(&mut self, s: SiteId, speed: f64) {
        assert!(speed > 0.0 && speed.is_finite(), "speed must be positive");
        self.speeds[s.0] = speed;
    }

    /// Returns `true` iff a path of links joins `a` and `b` (used by the
    /// fault-injection layer to decide whether a routed management-plane
    /// message can physically traverse the network).
    pub fn has_path(&self, a: SiteId, b: SiteId) -> bool {
        let n = self.site_count();
        if a.0 >= n || b.0 >= n {
            return false;
        }
        self.hop_distances(a)[b.0] != usize::MAX
    }

    /// Returns `true` iff every site can reach every other site.
    pub fn is_connected(&self) -> bool {
        let n = self.site_count();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut queue = VecDeque::new();
        seen[0] = true;
        queue.push_back(SiteId(0));
        let mut count = 1;
        while let Some(u) = queue.pop_front() {
            for (v, _) in &self.adjacency[u.0] {
                if !seen[v.0] {
                    seen[v.0] = true;
                    count += 1;
                    queue.push_back(*v);
                }
            }
        }
        count == n
    }

    /// Hop distances (breadth-first, ignoring delays) from `src` to every
    /// site; unreachable sites get `usize::MAX`.
    pub fn hop_distances(&self, src: SiteId) -> Vec<usize> {
        let n = self.site_count();
        let mut dist = vec![usize::MAX; n];
        let mut queue = VecDeque::new();
        dist[src.0] = 0;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            for (v, _) in &self.adjacency[u.0] {
                if dist[v.0] == usize::MAX {
                    dist[v.0] = dist[u.0] + 1;
                    queue.push_back(*v);
                }
            }
        }
        dist
    }

    /// Maximum hop-eccentricity over all sites (the hop diameter); `None` if
    /// the network is disconnected or empty.
    pub fn hop_diameter(&self) -> Option<usize> {
        if self.site_count() == 0 {
            return None;
        }
        let mut max = 0usize;
        for s in self.sites() {
            let d = self.hop_distances(s);
            for &x in &d {
                if x == usize::MAX {
                    return None;
                }
                max = max.max(x);
            }
        }
        Some(max)
    }

    /// Average node degree.
    pub fn average_degree(&self) -> f64 {
        if self.site_count() == 0 {
            return 0.0;
        }
        2.0 * self.link_count as f64 / self.site_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Network {
        let mut n = Network::new(3);
        n.add_link(SiteId(0), SiteId(1), 1.0).unwrap();
        n.add_link(SiteId(1), SiteId(2), 2.0).unwrap();
        n.add_link(SiteId(0), SiteId(2), 5.0).unwrap();
        n
    }

    #[test]
    fn construction_and_queries() {
        let n = triangle();
        assert_eq!(n.site_count(), 3);
        assert_eq!(n.link_count(), 3);
        assert_eq!(n.degree(SiteId(0)), 2);
        assert_eq!(n.link_delay(SiteId(0), SiteId(2)), Some(5.0));
        assert_eq!(n.link_delay(SiteId(2), SiteId(0)), Some(5.0));
        assert_eq!(n.link_delay(SiteId(0), SiteId(0)), None);
        assert!(n.has_link(SiteId(0), SiteId(1)));
        assert_eq!(n.links().count(), 3);
        assert_eq!(n.average_degree(), 2.0);
        assert_eq!(format!("{}", SiteId(3)), "s3");
        assert_eq!(SiteId::from(2).index(), 2);
    }

    #[test]
    fn link_errors() {
        let mut n = Network::new(2);
        assert_eq!(
            n.add_link(SiteId(0), SiteId(9), 1.0),
            Err(NetworkError::UnknownSite(SiteId(9)))
        );
        assert_eq!(
            n.add_link(SiteId(9), SiteId(0), 1.0),
            Err(NetworkError::UnknownSite(SiteId(9)))
        );
        assert_eq!(
            n.add_link(SiteId(0), SiteId(0), 1.0),
            Err(NetworkError::SelfLink(SiteId(0)))
        );
        assert_eq!(
            n.add_link(SiteId(0), SiteId(1), -2.0),
            Err(NetworkError::InvalidDelay(-2.0))
        );
        n.add_link(SiteId(0), SiteId(1), 1.0).unwrap();
        assert_eq!(
            n.add_link(SiteId(1), SiteId(0), 2.0),
            Err(NetworkError::DuplicateLink(SiteId(1), SiteId(0)))
        );
        assert!(NetworkError::SelfLink(SiteId(0))
            .to_string()
            .contains("self"));
    }

    #[test]
    fn connectivity() {
        let mut n = Network::new(4);
        n.add_link(SiteId(0), SiteId(1), 1.0).unwrap();
        n.add_link(SiteId(2), SiteId(3), 1.0).unwrap();
        assert!(!n.is_connected());
        n.add_link(SiteId(1), SiteId(2), 1.0).unwrap();
        assert!(n.is_connected());
        assert!(Network::new(0).is_connected());
        assert!(Network::new(1).is_connected());
    }

    #[test]
    fn pairwise_reachability() {
        let mut n = Network::new(4);
        n.add_link(SiteId(0), SiteId(1), 1.0).unwrap();
        n.add_link(SiteId(2), SiteId(3), 1.0).unwrap();
        assert!(n.has_path(SiteId(0), SiteId(1)));
        assert!(n.has_path(SiteId(1), SiteId(0)));
        assert!(!n.has_path(SiteId(0), SiteId(2)));
        assert!(n.has_path(SiteId(2), SiteId(2)));
        assert!(!n.has_path(SiteId(0), SiteId(9)));
        n.add_link(SiteId(1), SiteId(2), 1.0).unwrap();
        assert!(n.has_path(SiteId(0), SiteId(3)));
    }

    #[test]
    fn hop_distances_and_diameter() {
        let mut n = Network::new(4);
        n.add_link(SiteId(0), SiteId(1), 10.0).unwrap();
        n.add_link(SiteId(1), SiteId(2), 10.0).unwrap();
        n.add_link(SiteId(2), SiteId(3), 10.0).unwrap();
        assert_eq!(n.hop_distances(SiteId(0)), vec![0, 1, 2, 3]);
        assert_eq!(n.hop_diameter(), Some(3));
        let disconnected = Network::new(2);
        assert_eq!(disconnected.hop_diameter(), None);
        assert_eq!(Network::new(0).hop_diameter(), None);
    }

    #[test]
    fn link_delay_mutation() {
        let mut n = triangle();
        n.set_link_delay(SiteId(0), SiteId(1), 4.5).unwrap();
        assert_eq!(n.link_delay(SiteId(0), SiteId(1)), Some(4.5));
        assert_eq!(n.link_delay(SiteId(1), SiteId(0)), Some(4.5));
        assert_eq!(
            n.set_link_delay(SiteId(0), SiteId(1), -1.0),
            Err(NetworkError::InvalidDelay(-1.0))
        );
        assert_eq!(
            n.set_link_delay(SiteId(0), SiteId(9), 1.0),
            Err(NetworkError::UnknownSite(SiteId(9)))
        );
        assert_eq!(
            n.set_link_delay(SiteId(9), SiteId(0), 1.0),
            Err(NetworkError::UnknownSite(SiteId(9)))
        );
        let mut m = Network::new(3);
        m.add_link(SiteId(0), SiteId(1), 1.0).unwrap();
        assert_eq!(
            m.set_link_delay(SiteId(0), SiteId(2), 1.0),
            Err(NetworkError::MissingLink(SiteId(0), SiteId(2)))
        );
        assert!(NetworkError::MissingLink(SiteId(0), SiteId(2))
            .to_string()
            .contains("no link"));
    }

    #[test]
    fn link_removal_and_restoration() {
        let mut n = triangle();
        assert_eq!(n.remove_link(SiteId(0), SiteId(1)), Some(1.0));
        assert_eq!(n.link_count(), 2);
        assert!(!n.has_link(SiteId(0), SiteId(1)));
        assert!(!n.has_link(SiteId(1), SiteId(0)));
        assert!(n.is_connected()); // still connected through site 2
        assert_eq!(n.remove_link(SiteId(0), SiteId(1)), None);
        assert_eq!(n.remove_link(SiteId(0), SiteId(9)), None);
        // Restoring the link brings the triangle back.
        n.add_link(SiteId(0), SiteId(1), 1.0).unwrap();
        assert_eq!(n.link_count(), 3);
        assert_eq!(n.link_delay(SiteId(0), SiteId(1)), Some(1.0));
    }

    #[test]
    fn speeds() {
        let mut n = Network::new(2);
        assert_eq!(n.speed(SiteId(0)), 1.0);
        n.set_speed(SiteId(1), 2.5);
        assert_eq!(n.speed(SiteId(1)), 2.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_speed_rejected() {
        let mut n = Network::new(1);
        n.set_speed(SiteId(0), 0.0);
    }
}
