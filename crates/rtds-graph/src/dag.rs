//! The precedence structure `G = (T, E)` of a job.
//!
//! [`TaskGraph`] stores tasks and directed precedence edges. Edges may carry
//! a *data volume* (paper §13: communication delays can be adjusted by the
//! ratio data volume / throughput when links have identical throughput).
//! The structure enforces acyclicity lazily: edges can be added freely, and
//! [`TaskGraph::validate`] / [`TaskGraph::topological_order`] detect cycles.

use crate::task::{Task, TaskId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Attributes attached to a precedence edge `(pred -> succ)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeData {
    /// Data volume shipped from the predecessor to the successor when they
    /// run on different sites. Ignored by the core paper model (propagation
    /// delay only) and used by the §13 data-volume extension.
    pub data_volume: f64,
}

impl Default for EdgeData {
    fn default() -> Self {
        EdgeData { data_volume: 0.0 }
    }
}

/// Errors produced by structural validation of a [`TaskGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The graph contains a cycle, so it is not a DAG.
    Cycle,
    /// An edge references a task id outside `0..task_count`.
    UnknownTask(TaskId),
    /// The same edge was inserted twice.
    DuplicateEdge(TaskId, TaskId),
    /// A self-loop `t -> t` was inserted.
    SelfLoop(TaskId),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::Cycle => write!(f, "task graph contains a cycle"),
            GraphError::UnknownTask(t) => write!(f, "edge references unknown task {t}"),
            GraphError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
            GraphError::SelfLoop(t) => write!(f, "self loop on task {t}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// One task's adjacency: the `(neighbor, edge data)` pairs in insertion
/// order (which is semantic — see [`TaskGraph::raw_adjacency`]).
pub type EdgeList = Vec<(TaskId, EdgeData)>;

/// A directed acyclic graph of tasks with precedence constraints.
///
/// Tasks are stored densely and addressed by [`TaskId`]. Predecessor and
/// successor adjacency lists are kept in insertion order, which makes
/// traversals deterministic — an important property for reproducible
/// simulations and golden tests.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TaskGraph {
    tasks: Vec<Task>,
    /// `succs[i]` lists `(j, edge)` for every edge `i -> j`.
    succs: Vec<Vec<(TaskId, EdgeData)>>,
    /// `preds[i]` lists `(j, edge)` for every edge `j -> i`.
    preds: Vec<Vec<(TaskId, EdgeData)>>,
    edge_count: usize,
}

impl TaskGraph {
    /// Creates an empty task graph.
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// Creates a graph with `n` tasks whose costs are given by `costs`.
    pub fn from_costs(costs: &[f64]) -> Self {
        let mut g = TaskGraph::new();
        for &c in costs {
            g.add_task(c);
        }
        g
    }

    /// Adds a task with the given computational complexity and returns its id.
    pub fn add_task(&mut self, cost: f64) -> TaskId {
        let id = TaskId(self.tasks.len());
        self.tasks.push(Task::new(id, cost));
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        id
    }

    /// Adds a labelled task.
    pub fn add_labelled_task(&mut self, cost: f64, label: impl Into<String>) -> TaskId {
        let id = self.add_task(cost);
        self.tasks[id.0].label = Some(label.into());
        id
    }

    /// Adds a precedence edge `pred -> succ` with default edge data.
    pub fn add_edge(&mut self, pred: TaskId, succ: TaskId) -> Result<(), GraphError> {
        self.add_edge_with(pred, succ, EdgeData::default())
    }

    /// Adds a precedence edge `pred -> succ` carrying a data volume.
    pub fn add_edge_with_volume(
        &mut self,
        pred: TaskId,
        succ: TaskId,
        data_volume: f64,
    ) -> Result<(), GraphError> {
        self.add_edge_with(pred, succ, EdgeData { data_volume })
    }

    /// Adds a precedence edge with explicit edge data.
    pub fn add_edge_with(
        &mut self,
        pred: TaskId,
        succ: TaskId,
        data: EdgeData,
    ) -> Result<(), GraphError> {
        let n = self.tasks.len();
        if pred.0 >= n {
            return Err(GraphError::UnknownTask(pred));
        }
        if succ.0 >= n {
            return Err(GraphError::UnknownTask(succ));
        }
        if pred == succ {
            return Err(GraphError::SelfLoop(pred));
        }
        if self.succs[pred.0].iter().any(|(s, _)| *s == succ) {
            return Err(GraphError::DuplicateEdge(pred, succ));
        }
        self.succs[pred.0].push((succ, data));
        self.preds[succ.0].push((pred, data));
        self.edge_count += 1;
        Ok(())
    }

    /// The raw `(succs, preds)` adjacency, exposed for snapshot
    /// serialization. Per-list **insertion order** is semantic (scheduling
    /// and message fan-out iterate these lists in order), and the two views
    /// interleave edges differently when edges were not added in
    /// source-major order — so a faithful snapshot must capture both lists
    /// verbatim rather than re-derive one from the other.
    pub fn raw_adjacency(&self) -> (&[EdgeList], &[EdgeList]) {
        (&self.succs, &self.preds)
    }

    /// Rebuilds a graph from tasks plus the adjacency captured by
    /// [`TaskGraph::raw_adjacency`]. The two views must describe the same
    /// edge set; the edge count is recomputed from `succs`.
    pub fn from_raw_parts(tasks: Vec<Task>, succs: Vec<EdgeList>, preds: Vec<EdgeList>) -> Self {
        assert_eq!(tasks.len(), succs.len(), "one successor list per task");
        assert_eq!(tasks.len(), preds.len(), "one predecessor list per task");
        let edge_count = succs.iter().map(Vec::len).sum::<usize>();
        debug_assert_eq!(
            edge_count,
            preds.iter().map(Vec::len).sum::<usize>(),
            "succs and preds must describe the same edge set"
        );
        TaskGraph {
            tasks,
            succs,
            preds,
            edge_count,
        }
    }

    /// Number of tasks `|T|`.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of precedence edges `|E|`.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Returns `true` if the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The task with the given id.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0]
    }

    /// Computational complexity of a task (`c(t)`).
    pub fn cost(&self, id: TaskId) -> f64 {
        self.tasks[id.0].cost
    }

    /// Total computational complexity of all tasks.
    pub fn total_cost(&self) -> f64 {
        self.tasks.iter().map(|t| t.cost).sum()
    }

    /// Iterator over all tasks in id order.
    pub fn tasks(&self) -> impl Iterator<Item = &Task> {
        self.tasks.iter()
    }

    /// Iterator over all task ids.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> {
        (0..self.tasks.len()).map(TaskId)
    }

    /// Immediate successors `Γ⁺(t)` of a task.
    pub fn successors(&self, id: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.succs[id.0].iter().map(|(s, _)| *s)
    }

    /// Immediate predecessors `Γ⁻(t)` of a task.
    pub fn predecessors(&self, id: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.preds[id.0].iter().map(|(p, _)| *p)
    }

    /// Immediate successors with their edge data.
    pub fn successor_edges(&self, id: TaskId) -> &[(TaskId, EdgeData)] {
        &self.succs[id.0]
    }

    /// Immediate predecessors with their edge data.
    pub fn predecessor_edges(&self, id: TaskId) -> &[(TaskId, EdgeData)] {
        &self.preds[id.0]
    }

    /// Data volume on an edge, if the edge exists.
    pub fn data_volume(&self, pred: TaskId, succ: TaskId) -> Option<f64> {
        self.succs[pred.0]
            .iter()
            .find(|(s, _)| *s == succ)
            .map(|(_, d)| d.data_volume)
    }

    /// Number of immediate predecessors of a task.
    pub fn in_degree(&self, id: TaskId) -> usize {
        self.preds[id.0].len()
    }

    /// Number of immediate successors of a task.
    pub fn out_degree(&self, id: TaskId) -> usize {
        self.succs[id.0].len()
    }

    /// Tasks with no predecessors (the job's entry tasks).
    pub fn sources(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|t| self.in_degree(*t) == 0)
            .collect()
    }

    /// Tasks with no successors (the job's exit tasks).
    pub fn sinks(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|t| self.out_degree(*t) == 0)
            .collect()
    }

    /// Kahn topological sort. Returns `Err(GraphError::Cycle)` if the graph is
    /// not acyclic. The order is deterministic: among ready tasks, the lowest
    /// id is emitted first.
    pub fn topological_order(&self) -> Result<Vec<TaskId>, GraphError> {
        let n = self.tasks.len();
        let mut indeg: Vec<usize> = (0..n).map(|i| self.preds[i].len()).collect();
        // A simple ordered frontier: we repeatedly pick the smallest ready id.
        // Using a sorted VecDeque keeps determinism without a heap dependency.
        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        ready.sort_unstable();
        let mut ready: VecDeque<usize> = ready.into();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = ready.pop_front() {
            order.push(TaskId(u));
            let mut newly_ready = Vec::new();
            for (v, _) in &self.succs[u] {
                indeg[v.0] -= 1;
                if indeg[v.0] == 0 {
                    newly_ready.push(v.0);
                }
            }
            newly_ready.sort_unstable();
            // Merge while keeping the frontier sorted (frontiers are small).
            for v in newly_ready {
                let pos = ready.iter().position(|&x| x > v).unwrap_or(ready.len());
                ready.insert(pos, v);
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(GraphError::Cycle)
        }
    }

    /// Reverse topological order (sinks first).
    pub fn reverse_topological_order(&self) -> Result<Vec<TaskId>, GraphError> {
        let mut order = self.topological_order()?;
        order.reverse();
        Ok(order)
    }

    /// Returns `true` iff the graph is acyclic.
    pub fn is_acyclic(&self) -> bool {
        self.topological_order().is_ok()
    }

    /// Full structural validation: acyclicity (edge-level invariants are
    /// enforced at insertion time).
    pub fn validate(&self) -> Result<(), GraphError> {
        self.topological_order().map(|_| ())
    }

    /// Returns `true` if `ancestor` can reach `descendant` through precedence
    /// edges (used by property tests and by the preemptive extension).
    pub fn reaches(&self, ancestor: TaskId, descendant: TaskId) -> bool {
        if ancestor == descendant {
            return true;
        }
        let mut seen = vec![false; self.tasks.len()];
        let mut stack = vec![ancestor];
        seen[ancestor.0] = true;
        while let Some(u) = stack.pop() {
            for (v, _) in &self.succs[u.0] {
                if *v == descendant {
                    return true;
                }
                if !seen[v.0] {
                    seen[v.0] = true;
                    stack.push(*v);
                }
            }
        }
        false
    }

    /// Length (in number of tasks) of the longest chain in the graph.
    pub fn longest_chain_len(&self) -> usize {
        let Ok(order) = self.topological_order() else {
            return 0;
        };
        let mut depth = vec![1usize; self.tasks.len()];
        for &u in &order {
            for (v, _) in &self.succs[u.0] {
                depth[v.0] = depth[v.0].max(depth[u.0] + 1);
            }
        }
        depth.into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> TaskGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut g = TaskGraph::from_costs(&[1.0, 2.0, 3.0, 4.0]);
        g.add_edge(TaskId(0), TaskId(1)).unwrap();
        g.add_edge(TaskId(0), TaskId(2)).unwrap();
        g.add_edge(TaskId(1), TaskId(3)).unwrap();
        g.add_edge(TaskId(2), TaskId(3)).unwrap();
        g
    }

    #[test]
    fn construction_and_counts() {
        let g = diamond();
        assert_eq!(g.task_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert!(!g.is_empty());
        assert_eq!(g.total_cost(), 10.0);
        assert_eq!(g.cost(TaskId(2)), 3.0);
        assert_eq!(g.in_degree(TaskId(3)), 2);
        assert_eq!(g.out_degree(TaskId(0)), 2);
    }

    #[test]
    fn sources_and_sinks() {
        let g = diamond();
        assert_eq!(g.sources(), vec![TaskId(0)]);
        assert_eq!(g.sinks(), vec![TaskId(3)]);
    }

    #[test]
    fn topological_order_is_valid_and_deterministic() {
        let g = diamond();
        let order = g.topological_order().unwrap();
        assert_eq!(order, vec![TaskId(0), TaskId(1), TaskId(2), TaskId(3)]);
        let rev = g.reverse_topological_order().unwrap();
        assert_eq!(rev[0], TaskId(3));
    }

    #[test]
    fn cycle_detection() {
        let mut g = TaskGraph::from_costs(&[1.0, 1.0, 1.0]);
        g.add_edge(TaskId(0), TaskId(1)).unwrap();
        g.add_edge(TaskId(1), TaskId(2)).unwrap();
        g.add_edge(TaskId(2), TaskId(0)).unwrap();
        assert!(!g.is_acyclic());
        assert_eq!(g.topological_order(), Err(GraphError::Cycle));
        assert_eq!(g.validate(), Err(GraphError::Cycle));
    }

    #[test]
    fn edge_error_cases() {
        let mut g = TaskGraph::from_costs(&[1.0, 1.0]);
        assert_eq!(
            g.add_edge(TaskId(0), TaskId(5)),
            Err(GraphError::UnknownTask(TaskId(5)))
        );
        assert_eq!(
            g.add_edge(TaskId(7), TaskId(1)),
            Err(GraphError::UnknownTask(TaskId(7)))
        );
        assert_eq!(
            g.add_edge(TaskId(0), TaskId(0)),
            Err(GraphError::SelfLoop(TaskId(0)))
        );
        g.add_edge(TaskId(0), TaskId(1)).unwrap();
        assert_eq!(
            g.add_edge(TaskId(0), TaskId(1)),
            Err(GraphError::DuplicateEdge(TaskId(0), TaskId(1)))
        );
        // Errors render as readable strings.
        assert!(GraphError::Cycle.to_string().contains("cycle"));
    }

    #[test]
    fn reachability() {
        let g = diamond();
        assert!(g.reaches(TaskId(0), TaskId(3)));
        assert!(g.reaches(TaskId(1), TaskId(3)));
        assert!(!g.reaches(TaskId(1), TaskId(2)));
        assert!(g.reaches(TaskId(2), TaskId(2)));
        assert!(!g.reaches(TaskId(3), TaskId(0)));
    }

    #[test]
    fn data_volumes() {
        let mut g = TaskGraph::from_costs(&[1.0, 1.0]);
        g.add_edge_with_volume(TaskId(0), TaskId(1), 42.0).unwrap();
        assert_eq!(g.data_volume(TaskId(0), TaskId(1)), Some(42.0));
        assert_eq!(g.data_volume(TaskId(1), TaskId(0)), None);
        assert_eq!(g.successor_edges(TaskId(0))[0].1.data_volume, 42.0);
        assert_eq!(g.predecessor_edges(TaskId(1))[0].1.data_volume, 42.0);
    }

    #[test]
    fn longest_chain() {
        let g = diamond();
        assert_eq!(g.longest_chain_len(), 3);
        let mut chain = TaskGraph::from_costs(&[1.0; 5]);
        for i in 0..4 {
            chain.add_edge(TaskId(i), TaskId(i + 1)).unwrap();
        }
        assert_eq!(chain.longest_chain_len(), 5);
        let empty = TaskGraph::new();
        assert_eq!(empty.longest_chain_len(), 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn labelled_tasks() {
        let mut g = TaskGraph::new();
        let id = g.add_labelled_task(2.0, "source");
        assert_eq!(g.task(id).label.as_deref(), Some("source"));
    }
}
