//! `exp_workloads` — streaming open-loop workload runs with trace
//! record/replay (the million-job driver).
//!
//! Builds a square grid, streams jobs from a seeded open-loop arrival
//! process through the bounded-memory execution path of `rtds-core`, and
//! reports throughput plus the memory high-water marks (peak in-flight
//! jobs, peak per-site plan size, peak event-queue length) that prove a run
//! of any length keeps only the in-flight work resident.
//!
//! ```text
//! exp_workloads [--seed <u64>] [--jobs <n>] [--rate <f64>]
//!               [--process poisson|onoff|diurnal|pareto]
//!               [--sites <n>] [--hotspots <n>]
//!               [--record <trace.jsonl>] [--json <path>]
//!               [--trace-out <p> | --trace-ring <n>] [--chrome-trace <p>]
//! exp_workloads --replay <trace.jsonl> [--json <path>]
//! ```
//!
//! The `--trace-*` flags record the *protocol* span trace (`rtds-trace/1`,
//! see `docs/TRACING.md`) — distinct from the `--record` workload-arrival
//! trace. `--trace-ring` keeps tracing bounded for million-job runs; they
//! also compose with `--replay`.
//!
//! `--rate` is the aggregate arrival rate (jobs per simulated time unit
//! over the whole system); `--jobs` caps the stream length. `--record`
//! tees every arrival into a JSONL trace whose header carries the full
//! experiment configuration, so `--replay <trace>` reconstructs the run
//! from the file alone — and writes a byte-identical `--json` report, which
//! is the CI round-trip check:
//!
//! ```text
//! exp_workloads --seed 3 --jobs 500 --record t.jsonl --json live.json
//! exp_workloads --replay t.jsonl --json replay.json
//! cmp live.json replay.json
//! ```
//!
//! The acceptance-scale run (`--jobs 1000000`) finishes with a peak
//! resident job count thousands of times smaller than the total (see
//! `docs/WORKLOADS.md` for recorded numbers).

use rtds_bench::{write_json_report, ExpArgs, TraceSetup, TRACE_FLAGS};
use rtds_core::{RtdsConfig, RtdsSystem, StreamOptions, StreamReport};
use rtds_net::generators::{grid, DelayDistribution};
use rtds_scenarios::{mix_seed, Json};
use rtds_sim::metrics_json::metrics_to_json;
use rtds_sim::trace::Value as TraceValue;
use rtds_workload::{
    JobFactory, JobSpec, JobTemplate, OpenLoopSpec, RateProcess, RecordingSource, SizeMix,
    TraceReader, WorkloadSource,
};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::time::Instant;

/// Identifier of the report schema (bump on breaking field changes).
/// Version 2 added the deterministic `metrics` section.
const WORKLOADS_SCHEMA: &str = "rtds-exp-workloads/2";

fn main() {
    let mut flags = vec![
        "jobs", "rate", "process", "sites", "hotspots", "record", "replay",
    ];
    flags.extend(TRACE_FLAGS);
    let args = ExpArgs::parse(&flags, &[]);
    if args.has("replay") {
        // Replay reconstructs the whole run from the trace header; every
        // live-mode flag would be silently overridden, so reject them all.
        // (The protocol-trace flags stay legal: tracing a replay is how a
        // recorded workload gets inspected.)
        for flag in [
            "record", "seed", "jobs", "rate", "process", "sites", "hotspots",
        ] {
            if args.has(flag) {
                eprintln!(
                    "--replay reconstructs the run from the trace header; it cannot be combined with --{flag}"
                );
                std::process::exit(2);
            }
        }
    }
    match args.value_of("replay") {
        Some(path) => replay(path, &args),
        None => live(&args),
    }
}

/// A live run: generate the stream (optionally teeing it into a trace).
fn live(args: &ExpArgs) {
    let tracing = TraceSetup::from_args(args);
    let seed = args.seed(7);
    let jobs = args.u64_of("jobs", 10_000);
    let rate = args.f64_of("rate", 0.5);
    let hotspots = args.usize_of("hotspots", 0);
    let requested_sites = args.usize_of("sites", 64).max(1);
    let side = (requested_sites as f64).sqrt().ceil() as usize;
    let sites = side * side;
    let process_name = args.value_of("process").unwrap_or("poisson");
    let (process, sizes) = pick_process(process_name, rate);

    let spec = OpenLoopSpec {
        process,
        sizes,
        hotspots,
        horizon: f64::INFINITY,
        max_jobs: jobs,
    };
    let source = spec.build(sites, mix_seed(seed, 2));
    println!(
        "exp_workloads: {jobs} jobs, {process_name} rate {rate}, {side}x{side} grid ({sites} sites), seed {seed}"
    );

    // The trace header makes the file self-contained: replay rebuilds the
    // topology and system seeds from it.
    let metadata = [
        ("seed", Json::UInt(seed)),
        ("sites", Json::UInt(sites as u64)),
        ("jobs", Json::UInt(jobs)),
        ("rate", Json::Num(rate)),
        ("process", Json::str(process_name)),
        ("hotspots", Json::UInt(hotspots as u64)),
        ("template", JobTemplate::default().describe()),
    ];
    match args.value_of("record") {
        Some(path) => {
            let file = File::create(path).unwrap_or_else(|e| {
                eprintln!("cannot create trace {path}: {e}");
                std::process::exit(1);
            });
            let recording = RecordingSource::new(source, BufWriter::new(file), &metadata)
                .unwrap_or_else(|e| {
                    eprintln!("cannot write trace header to {path}: {e}");
                    std::process::exit(1);
                });
            let (report, recording) = run_stream(recording, seed, side, jobs, &tracing);
            let (_, _writer) = recording.finish().unwrap_or_else(|e| {
                eprintln!("cannot flush trace {path}: {e}");
                std::process::exit(1);
            });
            println!("recorded trace to {path}");
            print_and_write(&report, seed, sites, args);
        }
        None => {
            let (report, _) = run_stream(source, seed, side, jobs, &tracing);
            print_and_write(&report, seed, sites, args);
        }
    }
}

/// A replay run: everything (seeds, topology, workload) comes from the
/// trace, so the deterministic report is byte-identical to the live run's.
fn replay(path: &str, args: &ExpArgs) {
    let tracing = TraceSetup::from_args(args);
    let file = File::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open trace {path}: {e}");
        std::process::exit(1);
    });
    let reader = TraceReader::new(BufReader::new(file));
    let need = |key: &str| {
        reader.header_u64(key).unwrap_or_else(|| {
            eprintln!("trace {path} header is missing {key:?}; was it recorded by exp_workloads?");
            std::process::exit(1);
        })
    };
    let seed = need("seed");
    let sites = need("sites") as usize;
    let jobs = need("jobs");
    // The jobs of a trace are a pure function of (template, spec, time):
    // if the binary's default template has drifted since the recording,
    // replay would silently regenerate different DAGs — refuse instead.
    let current_template = JobTemplate::default().describe();
    match reader.header().get("template") {
        Some(recorded) if *recorded == current_template => {}
        Some(recorded) => {
            eprintln!(
                "trace {path} was recorded with a different job template:\n  recorded: {}\n  current:  {}",
                recorded.render_compact(),
                current_template.render_compact()
            );
            std::process::exit(1);
        }
        None => {
            eprintln!(
                "trace {path} header is missing \"template\"; was it recorded by exp_workloads?"
            );
            std::process::exit(1);
        }
    }
    let side = (sites as f64).sqrt().round() as usize;
    if side * side != sites {
        eprintln!(
            "trace {path} header claims {sites} sites, but exp_workloads builds square grids \
             only — {side}x{side} would give {} sites; the header cannot be honoured",
            side * side
        );
        std::process::exit(1);
    }
    println!("exp_workloads: replaying {path} ({jobs} jobs, {side}x{side} grid, seed {seed})");
    // The header's site count is a claim about the topology, not a fact:
    // guard every replayed arrival against the grid actually built so a
    // hand-edited or corrupted trace fails with a clear message instead of
    // an assertion deep inside the engine.
    let checked = SiteBoundsCheck {
        inner: reader,
        sites,
        path: path.to_string(),
    };
    let (report, _) = run_stream(checked, seed, side, jobs, &tracing);
    print_and_write(&report, seed, sites, args);
}

/// Wraps a replayed trace and validates each arrival's site against the
/// topology actually built (see `replay`).
struct SiteBoundsCheck<S: WorkloadSource> {
    inner: S,
    sites: usize,
    path: String,
}

impl<S: WorkloadSource> WorkloadSource for SiteBoundsCheck<S> {
    fn next_arrival(&mut self) -> Option<(f64, JobSpec)> {
        let (time, spec) = self.inner.next_arrival()?;
        if spec.site >= self.sites {
            eprintln!(
                "trace {} is inconsistent: arrival at t = {time} targets site {} but the header's \
                 topology has only sites 0..{}",
                self.path, spec.site, self.sites
            );
            std::process::exit(1);
        }
        Some((time, spec))
    }
}

/// Maps a `--process` name to an arrival process with aggregate rate
/// `rate` plus the matching size mix.
fn pick_process(name: &str, rate: f64) -> (RateProcess, SizeMix) {
    let default_sizes = SizeMix::Uniform { min: 6, max: 10 };
    match name {
        "poisson" => (RateProcess::Poisson { rate }, default_sizes),
        // 1/3 duty cycle at triple rate plus a trickle between bursts:
        // the time-averaged rate stays close to `rate`.
        "onoff" => (
            RateProcess::OnOff {
                on_rate: 3.0 * rate,
                off_rate: 0.1 * rate,
                mean_on: 40.0,
                mean_off: 80.0,
            },
            default_sizes,
        ),
        // Trough-to-crest swing around `rate` with a 240-unit day.
        "diurnal" => (
            RateProcess::Diurnal {
                base: 0.25 * rate,
                peak: 1.75 * rate,
                period: 240.0,
            },
            default_sizes,
        ),
        // Poisson arrivals with a heavy-tail job-size mix.
        "pareto" => (
            RateProcess::Poisson { rate },
            SizeMix::Pareto {
                alpha: 1.6,
                min: 4,
                cap: 48,
            },
        ),
        other => {
            eprintln!("unknown --process {other:?} (try poisson, onoff, diurnal or pareto)");
            std::process::exit(2);
        }
    }
}

/// Builds the system and streams the whole source through it.
fn run_stream<S: WorkloadSource>(
    source: S,
    seed: u64,
    side: usize,
    jobs: u64,
    tracing: &TraceSetup,
) -> (StreamReport, S) {
    let network = grid(
        side,
        side,
        false,
        DelayDistribution::Constant(1.0),
        mix_seed(seed, 1),
    );
    let mut system = RtdsSystem::new(network, RtdsConfig::default(), mix_seed(seed, 5));
    tracing.install(
        &mut system,
        &[
            ("experiment", TraceValue::Str("workloads".into())),
            ("seed", TraceValue::U64(seed)),
            ("sites", TraceValue::U64((side * side) as u64)),
            ("jobs", TraceValue::U64(jobs)),
        ],
    );
    system.set_fault_seed(mix_seed(seed, 4));
    // Backstop against protocol bugs, far above any real event count.
    system.set_max_events(jobs.max(10_000).saturating_mul(10_000));
    let mut factory = JobFactory::new(source, JobTemplate::default());
    let start = Instant::now();
    let report = system.run_streaming(&mut factory, &StreamOptions::default());
    let wall = start.elapsed();
    tracing.finish(&mut system);
    // The wall clock is nondeterministic and stays on stdout only — the
    // JSON report must be byte-identical between a live run and its replay.
    println!();
    println!(
        "{:>10} jobs in {:.2} s ({:.0} jobs/s, {:.0} events/s)",
        report.guarantee.submitted,
        wall.as_secs_f64(),
        report.guarantee.submitted as f64 / wall.as_secs_f64().max(1e-9),
        report.events_processed as f64 / wall.as_secs_f64().max(1e-9),
    );
    (report, factory.into_source())
}

/// Prints the summary table and writes the canonical (fully deterministic)
/// JSON report.
fn print_and_write(report: &StreamReport, seed: u64, sites: usize, args: &ExpArgs) {
    let g = &report.guarantee;
    println!("{:<22} {:>12}", "submitted", g.submitted);
    println!("{:<22} {:>12}", "accepted locally", g.accepted_locally);
    println!(
        "{:<22} {:>12}",
        "accepted distributed", g.accepted_distributed
    );
    println!("{:<22} {:>12}", "rejected", g.rejected);
    println!(
        "{:<22} {:>12.4}",
        "guarantee ratio",
        report.guarantee_ratio()
    );
    println!("{:<22} {:>12}", "deadline misses", g.deadline_misses);
    println!(
        "{:<22} {:>12.2}",
        "messages per job", report.messages_per_job
    );
    println!("{:<22} {:>12}", "events processed", report.events_processed);
    println!("{:<22} {:>12.1}", "finished at", report.finished_at);
    println!();
    println!("memory high-water marks (streaming keeps these flat):");
    println!(
        "{:<22} {:>12}",
        "  in-flight jobs", report.peak_inflight_jobs
    );
    println!(
        "{:<22} {:>12}",
        "  plan reservations", report.peak_plan_reservations
    );
    println!("{:<22} {:>12}", "  event queue", report.peak_queue_len);
    println!("{:<22} {:>12}", "  harvest passes", report.harvests);

    assert_eq!(
        g.deadline_misses, 0,
        "accepted jobs must never miss deadlines"
    );
    assert_eq!(
        report.unharvested_completions, 0,
        "every accepted job must surface a completion"
    );

    if let Some(path) = args.json_path() {
        write_json_report(path, &to_json(report, seed, sites).render());
    }
}

/// The canonical report: every field is a pure function of the trace (or
/// of the seed and flags that produced it), so live and replay renderings
/// are byte-identical.
fn to_json(report: &StreamReport, seed: u64, sites: usize) -> Json {
    let g = &report.guarantee;
    Json::object(vec![
        ("schema", Json::str(WORKLOADS_SCHEMA)),
        ("seed", Json::UInt(seed)),
        ("sites", Json::UInt(sites as u64)),
        ("submitted", Json::UInt(g.submitted)),
        ("accepted_locally", Json::UInt(g.accepted_locally)),
        ("accepted_distributed", Json::UInt(g.accepted_distributed)),
        ("rejected", Json::UInt(g.rejected)),
        ("guarantee_ratio", Json::Num(report.guarantee_ratio())),
        ("completed_on_time", Json::UInt(g.completed_on_time)),
        ("deadline_misses", Json::UInt(g.deadline_misses)),
        ("messages_sent", Json::UInt(report.stats.messages_sent)),
        (
            "messages_delivered",
            Json::UInt(report.stats.messages_delivered),
        ),
        ("messages_per_job", Json::Num(report.messages_per_job)),
        ("events_processed", Json::UInt(report.events_processed)),
        ("finished_at", Json::Num(report.finished_at)),
        ("mean_slack", Json::Num(report.mean_slack)),
        ("min_slack", Json::Num(report.min_slack)),
        ("peak_inflight_jobs", Json::UInt(report.peak_inflight_jobs)),
        (
            "peak_plan_reservations",
            Json::UInt(report.peak_plan_reservations),
        ),
        ("peak_queue_len", Json::UInt(report.peak_queue_len)),
        ("harvests", Json::UInt(report.harvests)),
        (
            "unharvested_completions",
            Json::UInt(report.unharvested_completions),
        ),
        // Full telemetry with scope detail (per-site plan gauges, workload
        // inter-arrival jitter, latency/laxity histograms). Every summary
        // is a pure function of the trace, so live and replay renderings
        // stay byte-identical.
        ("metrics", metrics_to_json(&report.metrics, true)),
    ])
}
