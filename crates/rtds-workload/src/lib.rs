//! # rtds-workload — streaming open-loop workloads with trace record/replay
//!
//! The paper's evaluation feeds RTDS a fixed batch of DAG jobs; production
//! traffic is a *stream*. This crate decouples workload generation from the
//! engine so run length is bounded by time, not by how many jobs fit in
//! memory:
//!
//! * [`source`] — composable open-loop arrival processes emitting
//!   `(arrival_time, JobSpec)` lazily from the [`WorkloadSource`] trait:
//!   seeded Poisson, bursty on/off (a two-state Markov-modulated Poisson
//!   process), diurnal rate curves sampled by exact thinning, plus a
//!   time-ordered [`MergedSource`] combinator,
//! * [`spec`] — the compact per-arrival [`JobSpec`] (site, task count,
//!   per-job seed) and heavy-tail [`SizeMix`]es (fixed / uniform / Pareto),
//! * [`trace`] — a deterministic JSONL trace format with [`TraceWriter`]
//!   (record), [`TraceReader`] (replay) and the [`RecordingSource`] tee;
//!   replaying a recorded trace reproduces the live run's report
//!   byte-for-byte, and re-recording a replay reproduces the trace itself,
//! * [`factory`] — [`JobFactory`]: expands specs into concrete
//!   [`rtds_graph::Job`]s through one reused, per-job-reseeded generator
//!   and feeds them to [`rtds_core::RtdsSystem::run_streaming`], the
//!   bounded-memory execution path (a million-job run keeps only the
//!   in-flight jobs resident).
//!
//! Scenario wiring (the `stream` field on `rtds_scenarios::Scenario` and
//! the diurnal-wave / pareto-burst / replayed-trace registry entries) lives
//! in `rtds-scenarios`; the `exp_workloads` binary in `rtds-bench` drives
//! million-job runs with `--record`/`--replay`. See `docs/WORKLOADS.md`.
//!
//! The workload trace records *arrivals* (what enters the system); the
//! protocol *span* trace (`rtds-trace`, `docs/TRACING.md`) records what the
//! protocol then did with them. The two compose: `exp_workloads --replay
//! t.jsonl --trace-out spans.jsonl` replays a recorded workload while
//! streaming the causal span trace of its execution.
//!
//! ## Quickstart
//!
//! ```
//! use rtds_workload::{JobFactory, JobTemplate, OpenLoopSpec, RateProcess, SizeMix};
//! use rtds_core::{RtdsConfig, RtdsSystem, StreamOptions};
//! use rtds_net::generators::{grid, DelayDistribution};
//!
//! let spec = OpenLoopSpec {
//!     process: RateProcess::Poisson { rate: 0.4 },
//!     sizes: SizeMix::Uniform { min: 4, max: 10 },
//!     hotspots: 0,
//!     horizon: 120.0,
//!     max_jobs: 0,
//! };
//! let network = grid(3, 3, false, DelayDistribution::Constant(1.0), 1);
//! let mut system = RtdsSystem::new(network, RtdsConfig::default(), 7);
//! let mut jobs = JobFactory::new(spec.build(9, 42), JobTemplate::default());
//! let report = system.run_streaming(&mut jobs, &StreamOptions::default());
//! assert_eq!(report.deadline_misses(), 0);
//! assert!(report.guarantee.submitted > 0);
//! ```

pub mod factory;
pub mod source;
pub mod spec;
pub mod trace;

pub use factory::{materialize, JobFactory, JobTemplate};
pub use source::{MergedSource, OpenLoopSource, OpenLoopSpec, RateProcess, WorkloadSource};
pub use spec::{JobSpec, SizeMix};
pub use trace::{
    reader_from_string, record_to_string, RecordingSource, TraceReader, TraceWriter, TRACE_SCHEMA,
};
