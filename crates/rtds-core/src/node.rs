//! The per-site RTDS state machine.
//!
//! Each [`RtdsNode`] is the system-management processor of one site. It runs
//! every stage of the paper's protocol (Fig. 1):
//!
//! 1. at start-up, the §7 PCS construction (routing exchange for `2h`
//!    phases),
//! 2. on a job arrival, the §5 local guarantee test,
//! 3. on local failure, the §8 ACS enrollment (locks + surplus collection),
//! 4. the §9/§12 Mapper and the §12.2 release/deadline adjustment,
//! 5. the §10 validation round concluded by a maximum coupling,
//! 6. the §11 permutation dispatch and reservation commit.
//!
//! Implementation notes (documented deviations, see DESIGN.md):
//!
//! * locked sites answer `EnrollBusy` instead of staying silent, so the
//!   initiator's collection round terminates without a timeout;
//! * while a site is locked it defers its *own* new job arrivals (they are
//!   queued and re-examined at unlock time), which guarantees that the plan a
//!   site validated against is exactly the plan it commits into when the
//!   permutation arrives;
//! * the Mapper anchors the trial schedule at
//!   `max(job release, now + 3 × max ACS delay)` — the §13 remark that "the
//!   job release must be augmented by the computation time taken by the
//!   mapper, the time taken by Trial-Mapping validation and also by the
//!   dispatching of tasks code" — so committed reservations never start in
//!   the past.

use crate::acs::{AcsCollection, AcsMember};
use crate::adjust::{adjust_mapping, AdjustOutcome};
use crate::config::RtdsConfig;
use crate::mapper::{map_dag, MapperInput};
use crate::messages::{RtdsMsg, TaskSpec};
use crate::pcs::PcsState;
use crate::snapshot as snap;
use crate::validate::{endorsable_with, ValidationOutcome, ValidationRound};
use rtds_graph::{Job, JobId, TaskGraph, TaskId};
use rtds_net::sphere::Sphere;
use rtds_net::SiteId;
use rtds_sched::feasibility::TaskRequest;
use rtds_sched::{SchedulePlan, Scheduler, SiteResources, SiteScheduler};
use rtds_sim::engine::Context;
use rtds_sim::json::Json;
use rtds_sim::snapshot as sim_snap;
use rtds_sim::snapshot::SnapshotError;
use rtds_sim::stats::GuaranteeStats;
use rtds_sim::trace::{DeferReason, Phase, RejectReason, SpanId, TracePayload};
use rtds_sim::Protocol;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Exact pairwise site distances, shared by all nodes when the
/// `exact_acs_diameter` configuration is enabled.
pub type GlobalDistances = Arc<Vec<Vec<f64>>>;

/// A job accepted by this site acting as initiator (used by the post-run
/// verification in the system layer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceptedJob {
    /// The job id.
    pub job: JobId,
    /// Its absolute deadline.
    pub deadline: f64,
    /// Whether it was distributed over an ACS (vs. kept local).
    pub distributed: bool,
}

/// Initiator-side state of one in-flight distribution.
#[derive(Debug, Clone)]
struct Inflight {
    job: Job,
    acs: AcsCollection,
    members: Vec<AcsMember>,
    /// Shared with the §10 `TrialMapping` broadcast (one `Arc` for the
    /// initiator's own copy and every member's message).
    tasks_per_logical: Arc<[Vec<TaskSpec>]>,
    validation: Option<ValidationRound>,
    /// Simulated time the distribution started (enrollment fan-out), for
    /// the `distribution_latency` histogram.
    started_at: f64,
    /// Simulated time the Trial-Mapping broadcast went out, for the
    /// `trial_mapping_latency` histogram (mapping → validation verdict).
    mapped_at: Option<f64>,
}

/// The RTDS protocol instance running on one site.
#[derive(Debug, Clone)]
pub struct RtdsNode {
    site: SiteId,
    config: RtdsConfig,
    /// Relative computing power of this site (honoured only when the
    /// uniform-machines extension is enabled).
    speed: f64,
    pcs: PcsState,
    sphere: Option<Sphere>,
    /// The local scheduler: per-core committed plans plus the policy chosen
    /// by [`RtdsConfig::scheduler`] over this site's [`SiteResources`].
    pub(crate) sched: SiteScheduler,
    /// Current lock: the initiator holding it and the job it serves.
    lock: Option<(SiteId, JobId)>,
    /// Arrivals deferred while locked.
    queued: VecDeque<Job>,
    /// In-flight distributions initiated by this site.
    inflight: BTreeMap<JobId, Inflight>,
    /// Outcome counters for jobs that arrived at this site.
    pub guarantee: GuaranteeStats,
    /// Jobs this site accepted (locally or after distribution).
    pub accepted: Vec<AcceptedJob>,
    /// Optional exact global distances (ablation of the ACS-diameter
    /// estimate).
    global_distances: Option<GlobalDistances>,
}

/// Builder for [`RtdsNode`]. Every field has a sensible default (no
/// neighbors, unit speed, default configuration, single-core resources), so
/// adding site parameters never ripples through call sites again.
#[derive(Debug, Clone)]
pub struct NodeBuilder {
    site: SiteId,
    neighbors: Vec<(SiteId, f64)>,
    speed: f64,
    config: RtdsConfig,
    resources: SiteResources,
    global_distances: Option<GlobalDistances>,
}

impl NodeBuilder {
    /// Starts a builder for the node of `site`.
    pub fn new(site: SiteId) -> Self {
        NodeBuilder {
            site,
            neighbors: Vec::new(),
            speed: 1.0,
            config: RtdsConfig::default(),
            resources: SiteResources::default(),
            global_distances: None,
        }
    }

    /// Adjacency of the site: `(neighbor, link delay)` pairs.
    pub fn neighbors(mut self, neighbors: Vec<(SiteId, f64)>) -> Self {
        self.neighbors = neighbors;
        self
    }

    /// Relative computing power (honoured when `uniform_machines` is set).
    pub fn speed(mut self, speed: f64) -> Self {
        self.speed = speed;
        self
    }

    /// Protocol configuration.
    pub fn config(mut self, config: RtdsConfig) -> Self {
        self.config = config;
        self
    }

    /// Compute resources of the site (cores, speed multiplier, memory). The
    /// default single-core bundle reproduces the paper's model exactly.
    pub fn resources(mut self, resources: SiteResources) -> Self {
        self.resources = resources;
        self
    }

    /// Shared exact-distance table for the `exact_acs_diameter` ablation.
    pub fn global_distances(mut self, global_distances: Option<GlobalDistances>) -> Self {
        self.global_distances = global_distances;
        self
    }

    /// Builds the node.
    pub fn build(self) -> RtdsNode {
        let pcs = PcsState::new(self.site, self.neighbors, self.config.sphere_radius);
        let base_speed = if self.config.uniform_machines {
            self.speed
        } else {
            1.0
        };
        let sched = SiteScheduler::new(
            self.config.scheduler,
            self.resources,
            base_speed,
            self.config.preemptive,
        );
        RtdsNode {
            site: self.site,
            config: self.config,
            speed: self.speed,
            pcs,
            sphere: None,
            sched,
            lock: None,
            queued: VecDeque::new(),
            inflight: BTreeMap::new(),
            guarantee: GuaranteeStats::default(),
            accepted: Vec::new(),
            global_distances: self.global_distances,
        }
    }
}

impl RtdsNode {
    /// Creates the node for `site` with the given adjacency, speed and
    /// configuration.
    #[deprecated(
        since = "0.10.0",
        note = "use NodeBuilder: positional arguments cannot absorb new site \
                parameters such as SiteResources"
    )]
    pub fn new(
        site: SiteId,
        neighbors: Vec<(SiteId, f64)>,
        speed: f64,
        config: RtdsConfig,
        global_distances: Option<GlobalDistances>,
    ) -> Self {
        NodeBuilder::new(site)
            .neighbors(neighbors)
            .speed(speed)
            .config(config)
            .global_distances(global_distances)
            .build()
    }

    /// The site this node runs on.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// The Potential Computing Sphere, once the §7 construction finished.
    pub fn sphere(&self) -> Option<&Sphere> {
        self.sphere.as_ref()
    }

    /// Returns `true` if the node currently holds a lock.
    pub fn is_locked(&self) -> bool {
        self.lock.is_some()
    }

    /// Number of deferred arrivals.
    pub fn queued_len(&self) -> usize {
        self.queued.len()
    }

    /// The site's local scheduler (policy + per-core committed plans).
    pub fn scheduler(&self) -> &SiteScheduler {
        &self.sched
    }

    /// Committed per-core plans of the computation processor.
    pub fn plans(&self) -> &[SchedulePlan] {
        self.sched.core_plans()
    }

    /// Total committed reservations across all cores.
    pub fn plan_len(&self) -> usize {
        self.sched.reservation_count()
    }

    /// Returns `true` when no core holds a reservation.
    pub fn plan_is_empty(&self) -> bool {
        self.sched.reservation_count() == 0
    }

    /// Removes and returns every placement whose reservation ends at or
    /// before `cutoff`, pruning the matching memory holds.
    pub fn drain_completed(&mut self, cutoff: f64) -> Vec<rtds_sched::Placement> {
        self.sched.drain_completed(cutoff)
    }

    /// Plan invariants hold on every core.
    pub fn check_plan_invariants(&self) -> bool {
        self.sched
            .core_plans()
            .iter()
            .all(SchedulePlan::check_invariants)
    }

    fn effective_speed(&self) -> f64 {
        // The scheduler composes the uniform-machines base speed with the
        // resource bundle's multiplier.
        self.sched.effective_speed()
    }

    fn route_delay(&self, to: SiteId) -> f64 {
        self.pcs.table().distance(to).unwrap_or_else(|| {
            self.sphere
                .as_ref()
                .map(|s| s.delay_diameter)
                .unwrap_or(0.0)
        })
    }

    fn send_protocol(&self, ctx: &mut Context<'_, RtdsMsg>, to: SiteId, msg: RtdsMsg) {
        let kind = msg.kind();
        ctx.count(kind, 1);
        if msg.is_distribution_message() {
            ctx.count("distribution_messages", 1);
            if let Some(hops) = self.pcs.table().hops(to) {
                ctx.count("link_traversals", hops as u64);
            }
        }
        let delay = self.route_delay(to);
        ctx.send_routed(to, delay, msg);
    }

    fn ensure_sphere(&mut self) {
        if self.sphere.is_none() && self.pcs.is_finished() {
            self.sphere = Some(self.pcs.sphere());
        }
    }

    // ----- job arrival handling (initiator side) -------------------------

    fn handle_arrival(&mut self, job: Job, ctx: &mut Context<'_, RtdsMsg>, count_submission: bool) {
        let id = job.id;
        let tasks = job.graph.task_count() as u32;
        let deadline = job.deadline();
        if count_submission {
            self.guarantee.submitted += 1;
            // Root of this job's span tree: every later stage links back
            // (directly or transitively) to this event.
            ctx.trace(root_span(id), SpanId::NONE, || TracePayload::Arrival {
                job: id.0,
                tasks,
                deadline,
            });
        }
        // Defer the job while the site is locked for another distribution or
        // while the one-time PCS construction has not completed yet (the
        // paper assumes PCS construction happens at system initialisation,
        // before any job arrives).
        if self.lock.is_some() || !self.pcs.is_finished() {
            let reason = if self.lock.is_some() {
                DeferReason::SiteLocked
            } else {
                DeferReason::PcsConstruction
            };
            ctx.trace(root_span(id), SpanId::NONE, || {
                TracePayload::ArrivalDeferred { job: id.0, reason }
            });
            self.queued.push_back(job);
            return;
        }
        let acceptance = phase_span(id, Phase::Acceptance, self.site);
        ctx.trace(acceptance, root_span(id), || TracePayload::LocalTest {
            job: id.0,
            tasks,
            deadline,
        });
        let now = ctx.now();
        // §5 local guarantee test, generalised to the site's scheduler (on
        // the default single-core bundle this is the original test
        // verbatim).
        let demands = self.config.demand.demands_for(&job.graph);
        if let Some(admission) = self.sched.admit_dag(&job, now, demands.as_deref()) {
            self.sched
                .reserve_dag(&admission)
                .expect("admission placements are compatible by construction");
            self.guarantee.accepted_locally += 1;
            self.accepted.push(AcceptedJob {
                job: job.id,
                deadline: job.deadline(),
                distributed: false,
            });
            ctx.count("accepted_local", 1);
            ctx.record("accept_latency", now - job.arrival_time.max(0.0));
            ctx.record("accept_laxity", job.deadline() - now);
            let completion = admission.completion;
            ctx.trace(acceptance, root_span(id), || TracePayload::LocalAccept {
                job: id.0,
                completion,
            });
            return;
        }
        ctx.trace(acceptance, root_span(id), || TracePayload::LocalReject {
            job: id.0,
        });
        self.start_distribution(job, ctx);
    }

    fn start_distribution(&mut self, job: Job, ctx: &mut Context<'_, RtdsMsg>) {
        self.ensure_sphere();
        let now = ctx.now();
        let peers: Vec<(SiteId, f64)> = match &self.sphere {
            Some(sphere) => {
                let mut peers: Vec<(SiteId, f64)> = sphere
                    .peers()
                    .map(|p| (p, sphere.delay_to(p).unwrap_or(0.0)))
                    .collect();
                peers.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0 .0.cmp(&b.0 .0)));
                if self.config.max_acs_size > 0 {
                    peers.truncate(self.config.max_acs_size);
                }
                peers
            }
            None => Vec::new(),
        };
        if peers.is_empty() {
            // No neighborhood to distribute over: the job is rejected.
            self.guarantee.rejected += 1;
            ctx.count("rejected_no_acs", 1);
            let id = job.id;
            ctx.trace(root_span(id), SpanId::NONE, || TracePayload::Reject {
                job: id.0,
                reason: RejectReason::EmptySphere,
            });
            return;
        }
        // Lock ourselves: our own arrivals queue until this job is resolved.
        self.lock = Some((self.site, job.id));
        let own_surplus = self
            .sched
            .surplus(now, self.config.observation_window)
            .max(self.config.surplus_floor);
        let acs = AcsCollection::new(self.site, own_surplus, self.effective_speed(), &peers);
        let id = job.id;
        let peer_count = peers.len() as u32;
        ctx.trace(
            phase_span(id, Phase::Enrollment, self.site),
            phase_span(id, Phase::Acceptance, self.site),
            || TracePayload::AcsEnroll {
                job: id.0,
                peers: peer_count,
            },
        );
        for (peer, _) in &peers {
            self.send_protocol(
                ctx,
                *peer,
                RtdsMsg::Enroll {
                    initiator: self.site,
                    job: job.id,
                },
            );
        }
        self.inflight.insert(
            job.id,
            Inflight {
                job,
                acs,
                members: Vec::new(),
                tasks_per_logical: Vec::new().into(),
                validation: None,
                started_at: now,
                mapped_at: None,
            },
        );
    }

    fn try_finish_enrollment(&mut self, job_id: JobId, ctx: &mut Context<'_, RtdsMsg>) {
        let Some(inflight) = self.inflight.get(&job_id) else {
            return;
        };
        if !inflight.acs.is_complete() {
            return;
        }
        self.run_mapper_and_validate(job_id, ctx);
    }

    fn run_mapper_and_validate(&mut self, job_id: JobId, ctx: &mut Context<'_, RtdsMsg>) {
        let Some(mut inflight) = self.inflight.remove(&job_id) else {
            return;
        };
        let now = ctx.now();
        let (members, specs) = inflight.acs.sorted_for_mapper();
        ctx.count("acs_members", members.len() as u64);

        // Communication-delay over-estimate ω: the ACS delay-diameter.
        let comm_delay = if self.config.exact_acs_diameter {
            self.exact_diameter(&members)
                .unwrap_or_else(|| inflight.acs.local_diameter_estimate())
        } else {
            inflight.acs.local_diameter_estimate()
        };

        // §13: the job release is pushed past the mapper + validation +
        // dispatch pipeline so no reservation starts in the past.
        let max_member_delay = members.iter().map(|m| m.delay).fold(0.0f64, f64::max);
        let pipeline_margin = 3.0 * max_member_delay;
        // When input data ships through the shared-bandwidth flow plane the
        // dispatch pipeline also includes the transfer itself: charge an
        // upper bound — the largest single edge volume at nominal throughput
        // — into the release floor so the laxity the adjustment checks
        // against already accounts for data movement.
        let transfer_margin = if self.config.flow_transfers {
            let g = &inflight.job.graph;
            let max_edge_volume = g
                .task_ids()
                .flat_map(|t| g.successor_edges(t).iter())
                .map(|(_, e)| e.data_volume)
                .fold(0.0f64, f64::max);
            max_edge_volume / self.config.throughput
        } else {
            0.0
        };
        let release_floor = inflight
            .job
            .release()
            .max(now + pipeline_margin + transfer_margin);

        let graph = &inflight.job.graph;
        let throughput = self.config.throughput;
        let volume_fn = |from: TaskId, to: TaskId| -> f64 {
            graph.data_volume(from, to).unwrap_or(0.0) / throughput
        };
        let input = MapperInput {
            graph,
            release: release_floor,
            processors: &specs,
            comm_delay,
            data_volume_delay: if self.config.data_volume_aware {
                Some(&volume_fn)
            } else {
                None
            },
            surplus_floor: self.config.surplus_floor,
        };
        let Some(result) = map_dag(&input) else {
            self.finish_rejected(&inflight, ctx, RejectReason::MapperFailed);
            return;
        };
        let used = result.used_count() as u32;
        let makespan = result.makespan;
        let makespan_star = result.makespan_star;
        ctx.trace(
            phase_span(job_id, Phase::Mapping, self.site),
            phase_span(job_id, Phase::Enrollment, self.site),
            || TracePayload::TrialMapping {
                job: job_id.0,
                used,
                makespan,
                makespan_star,
                omega: comm_delay,
            },
        );
        let adjusted = adjust_mapping(
            graph,
            &result,
            release_floor,
            inflight.job.deadline(),
            &specs,
            self.config.laxity_dispatch,
        );
        let AdjustOutcome::Adjusted {
            release, deadline, ..
        } = adjusted
        else {
            self.finish_rejected(&inflight, ctx, RejectReason::AdjustmentWindow);
            return;
        };

        // Build T_i per logical processor (compact numbering over the used
        // processors of the mapping). One shared allocation serves the local
        // endorsement, every member's TrialMapping message and the in-flight
        // record.
        let tasks_per_logical: Arc<[Vec<TaskSpec>]> = result
            .used_processors
            .iter()
            .map(|&p| {
                result
                    .tasks_on(p)
                    .iter()
                    .map(|&t| TaskSpec {
                        task: t,
                        release: release[t.0],
                        deadline: deadline[t.0],
                        cost: graph.cost(t),
                    })
                    .collect()
            })
            .collect();

        // §10: broadcast the mapping in the ACS and collect validation lists.
        let expected: Vec<SiteId> = members.iter().map(|m| m.site).collect();
        let mut validation = ValidationRound::new(tasks_per_logical.len(), expected);
        for member in &members {
            if member.site == self.site {
                let endorsable = endorsable_with(
                    &self.sched,
                    job_id,
                    &tasks_per_logical,
                    self.effective_speed(),
                );
                validation.record_reply(self.site, endorsable);
            } else {
                self.send_protocol(
                    ctx,
                    member.site,
                    RtdsMsg::TrialMapping {
                        job: job_id,
                        tasks_per_logical: Arc::clone(&tasks_per_logical),
                    },
                );
            }
        }
        inflight.members = members;
        inflight.tasks_per_logical = tasks_per_logical;
        inflight.validation = Some(validation);
        inflight.mapped_at = Some(now);
        self.inflight.insert(job_id, inflight);
        self.try_finish_validation(job_id, ctx);
    }

    fn exact_diameter(&self, members: &[AcsMember]) -> Option<f64> {
        let dist = self.global_distances.as_ref()?;
        let mut best = 0.0f64;
        for a in members {
            for b in members {
                if a.site != b.site {
                    best = best.max(dist[a.site.0][b.site.0]);
                }
            }
        }
        Some(best)
    }

    fn try_finish_validation(&mut self, job_id: JobId, ctx: &mut Context<'_, RtdsMsg>) {
        let complete = match self.inflight.get(&job_id) {
            Some(inflight) => inflight
                .validation
                .as_ref()
                .map(|v| v.is_complete())
                .unwrap_or(false),
            None => false,
        };
        if !complete {
            return;
        }
        let inflight = self.inflight.remove(&job_id).expect("checked above");
        if let Some(mapped_at) = inflight.mapped_at {
            // Broadcast → full validation verdict, in simulated time.
            ctx.record("trial_mapping_latency", ctx.now() - mapped_at);
        }
        let outcome = inflight
            .validation
            .as_ref()
            .expect("validation round exists")
            .conclude();
        match outcome {
            ValidationOutcome::Accepted { assignment } => {
                let coupling = assignment.len() as u32;
                ctx.trace(
                    phase_span(job_id, Phase::Dispatch, self.site),
                    phase_span(job_id, Phase::Mapping, self.site),
                    || TracePayload::MappingValidated {
                        job: job_id.0,
                        coupling,
                    },
                );
                self.dispatch_permutation(&inflight, &assignment, ctx);
            }
            ValidationOutcome::Rejected {
                coupling_size,
                required,
            } => {
                self.finish_rejected(
                    &inflight,
                    ctx,
                    RejectReason::CouplingTooSmall {
                        size: coupling_size as u32,
                        required: required as u32,
                    },
                );
            }
        }
    }

    fn dispatch_permutation(
        &mut self,
        inflight: &Inflight,
        assignment: &[SiteId],
        ctx: &mut Context<'_, RtdsMsg>,
    ) {
        let job_id = inflight.job.id;
        // Which logical processor (if any) each member must endorse.
        let mut per_site: BTreeMap<SiteId, Option<usize>> =
            inflight.members.iter().map(|m| (m.site, None)).collect();
        for (logical, site) in assignment.iter().enumerate() {
            per_site.insert(*site, Some(logical));
        }
        // The initiator's dispatch span was opened by the mapping-validated
        // event; committed tasks and placement failures record under it.
        let dispatch = phase_span(job_id, Phase::Dispatch, self.site);
        let mapping = phase_span(job_id, Phase::Mapping, self.site);
        for member in &inflight.members {
            let logical = per_site.get(&member.site).copied().flatten();
            if member.site == self.site {
                if let Some(l) = logical {
                    self.commit_logical(
                        job_id,
                        &inflight.tasks_per_logical[l],
                        dispatch,
                        mapping,
                        ctx,
                    );
                }
            } else {
                let tasks = logical
                    .map(|l| inflight.tasks_per_logical[l].clone())
                    .unwrap_or_default();
                self.send_protocol(
                    ctx,
                    member.site,
                    RtdsMsg::Permutation {
                        job: job_id,
                        logical,
                        tasks,
                    },
                );
                // Ship the member's input data through the flow plane: the
                // volume of every edge crossing into its logical processor
                // contends for link bandwidth with all concurrent transfers.
                if self.config.flow_transfers {
                    if let Some(l) = logical {
                        let volume =
                            cross_input_volume(&inflight.job.graph, &inflight.tasks_per_logical, l);
                        if volume > 0.0 {
                            ctx.count("task_data_sent", 1);
                            ctx.record("task_data_volume", volume);
                            ctx.transfer(
                                member.site,
                                volume,
                                RtdsMsg::TaskData {
                                    job: job_id,
                                    volume,
                                },
                            );
                        }
                    }
                }
            }
        }
        self.guarantee.accepted_distributed += 1;
        self.accepted.push(AcceptedJob {
            job: job_id,
            deadline: inflight.job.deadline(),
            distributed: true,
        });
        ctx.count("accepted_distributed", 1);
        let now = ctx.now();
        ctx.record("accept_latency", now - inflight.job.arrival_time.max(0.0));
        ctx.record("accept_laxity", inflight.job.deadline() - now);
        ctx.record("distribution_latency", now - inflight.started_at);
        ctx.trace(root_span(job_id), SpanId::NONE, || {
            TracePayload::JobAccepted {
                job: job_id.0,
                distributed: true,
            }
        });
        self.release_own_lock(job_id, ctx);
    }

    fn finish_rejected(
        &mut self,
        inflight: &Inflight,
        ctx: &mut Context<'_, RtdsMsg>,
        reason: RejectReason,
    ) {
        let job_id = inflight.job.id;
        // Unlock every remote member that positively enrolled.
        let remote_members: Vec<SiteId> = inflight
            .acs
            .members()
            .iter()
            .map(|m| m.site)
            .filter(|s| *s != self.site)
            .collect();
        for site in remote_members {
            self.send_protocol(ctx, site, RtdsMsg::Unlock { job: job_id });
        }
        self.guarantee.rejected += 1;
        ctx.count("rejected_distributed", 1);
        ctx.trace(root_span(job_id), SpanId::NONE, || TracePayload::Reject {
            job: job_id.0,
            reason,
        });
        self.release_own_lock(job_id, ctx);
    }

    fn release_own_lock(&mut self, job_id: JobId, ctx: &mut Context<'_, RtdsMsg>) {
        if let Some((holder, locked_job)) = self.lock {
            if holder == self.site && locked_job == job_id {
                self.lock = None;
            }
        }
        self.process_queue(ctx);
    }

    fn process_queue(&mut self, ctx: &mut Context<'_, RtdsMsg>) {
        if !self.pcs.is_finished() {
            return;
        }
        while self.lock.is_none() {
            let Some(job) = self.queued.pop_front() else {
                break;
            };
            self.handle_arrival(job, ctx, false);
        }
    }

    // ----- member side ----------------------------------------------------

    fn handle_enroll(&mut self, initiator: SiteId, job: JobId, ctx: &mut Context<'_, RtdsMsg>) {
        if self.lock.is_some() {
            self.send_protocol(ctx, initiator, RtdsMsg::EnrollBusy { job });
            ctx.count("enroll_refused", 1);
            return;
        }
        self.lock = Some((initiator, job));
        let surplus = self
            .sched
            .surplus(ctx.now(), self.config.observation_window)
            .max(self.config.surplus_floor);
        // Child of the *initiator's* enrollment span: the causal link that
        // stitches the member-side tree to the fan-out that triggered it.
        ctx.trace(
            phase_span(job, Phase::Enrollment, self.site),
            phase_span(job, Phase::Enrollment, initiator),
            || TracePayload::AcsJoined {
                job: job.0,
                initiator: initiator.0 as u32,
                surplus,
            },
        );
        self.send_protocol(
            ctx,
            initiator,
            RtdsMsg::EnrollAck {
                job,
                surplus,
                speed: self.effective_speed(),
            },
        );
    }

    fn handle_trial_mapping(
        &mut self,
        from: SiteId,
        job: JobId,
        tasks_per_logical: Arc<[Vec<TaskSpec>]>,
        ctx: &mut Context<'_, RtdsMsg>,
    ) {
        let endorsable =
            endorsable_with(&self.sched, job, &tasks_per_logical, self.effective_speed());
        let endorsable_count = endorsable.len() as u32;
        let total = tasks_per_logical.len() as u32;
        ctx.trace(
            phase_span(job, Phase::Validation, self.site),
            phase_span(job, Phase::Mapping, from),
            || TracePayload::Validation {
                job: job.0,
                endorsable: endorsable_count,
                total,
            },
        );
        self.send_protocol(ctx, from, RtdsMsg::ValidationReply { job, endorsable });
    }

    fn handle_permutation(
        &mut self,
        job: JobId,
        logical: Option<usize>,
        tasks: Vec<TaskSpec>,
        ctx: &mut Context<'_, RtdsMsg>,
    ) {
        let dispatch = phase_span(job, Phase::Dispatch, self.site);
        // The permutation came from the initiator's dispatch fan-out; the
        // lock remembers who that was (fall back to a root span if the lock
        // was already cleared by an unlock race).
        let parent = match self.lock {
            Some((initiator, locked)) if locked == job => {
                phase_span(job, Phase::Dispatch, initiator)
            }
            _ => SpanId::NONE,
        };
        if let Some(l) = logical {
            let logical_index = l as u32;
            ctx.trace(dispatch, parent, || TracePayload::Execute {
                job: job.0,
                logical: logical_index,
            });
            self.commit_logical(job, &tasks, dispatch, parent, ctx);
        } else {
            ctx.trace(dispatch, parent, || TracePayload::NotSelected {
                job: job.0,
            });
        }
        self.unlock_for(job, ctx);
    }

    fn commit_logical(
        &mut self,
        job: JobId,
        tasks: &[TaskSpec],
        span: SpanId,
        parent: SpanId,
        ctx: &mut Context<'_, RtdsMsg>,
    ) {
        let speed = self.effective_speed();
        let requests: Vec<TaskRequest> = tasks
            .iter()
            .map(|s| TaskRequest {
                job,
                task: s.task,
                release: s.release,
                deadline: s.deadline,
                duration: s.cost / speed,
            })
            .collect();
        match self.sched.satisfiable(&requests) {
            Some(placements) => {
                self.sched
                    .reserve(&placements)
                    .expect("satisfiable placements are non-overlapping");
                ctx.count("tasks_committed", placements.len() as u64);
            }
            None => {
                // Cannot happen while the locking discipline is respected
                // (the plan is frozen between validation and commit); counted
                // so experiments would surface a protocol bug immediately.
                ctx.count("placement_failures", 1);
                ctx.trace(span, parent, || TracePayload::PlacementFailure {
                    job: job.0,
                });
            }
        }
    }

    fn unlock_for(&mut self, job: JobId, ctx: &mut Context<'_, RtdsMsg>) {
        if let Some((_, locked_job)) = self.lock {
            if locked_job == job {
                self.lock = None;
            }
        }
        self.process_queue(ctx);
    }

    /// The shared exact-distance table, if the `exact_acs_diameter` ablation
    /// is enabled (snapshot support: the system layer serializes it once,
    /// verbatim — faults may have mutated the topology since construction,
    /// so it must not be recomputed on restore).
    pub(crate) fn global_distances(&self) -> Option<&GlobalDistances> {
        self.global_distances.as_ref()
    }

    /// Serializes the full node state (snapshot support; see
    /// [`crate::snapshot`]).
    pub(crate) fn encode_snapshot(&self) -> Json {
        Json::object(vec![
            ("site", snap::encode_site(self.site)),
            ("config", snap::encode_config(&self.config)),
            ("speed", sim_snap::f64_bits(self.speed)),
            ("pcs", self.pcs.encode_snapshot()),
            (
                "sphere",
                match &self.sphere {
                    Some(s) => snap::encode_sphere(s),
                    None => Json::Null,
                },
            ),
            ("sched", snap::encode_sched(&self.sched)),
            (
                "lock",
                match self.lock {
                    Some((holder, job)) => {
                        Json::Array(vec![snap::encode_site(holder), snap::encode_job_id(job)])
                    }
                    None => Json::Null,
                },
            ),
            (
                "queued",
                Json::Array(self.queued.iter().map(snap::encode_job).collect()),
            ),
            (
                "inflight",
                Json::Array(
                    self.inflight
                        .iter()
                        .map(|(id, inflight)| {
                            Json::Array(vec![snap::encode_job_id(*id), inflight.encode_snapshot()])
                        })
                        .collect(),
                ),
            ),
            ("guarantee", snap::encode_guarantee(&self.guarantee)),
            (
                "accepted",
                Json::Array(self.accepted.iter().map(snap::encode_accepted).collect()),
            ),
        ])
    }

    /// Inverse of [`RtdsNode::encode_snapshot`]. The exact-distance table is
    /// supplied by the system layer (it is shared by every node).
    pub(crate) fn decode_snapshot(
        doc: &Json,
        global_distances: Option<GlobalDistances>,
    ) -> Result<Self, SnapshotError> {
        let mut inflight = BTreeMap::new();
        for entry in sim_snap::get_items(doc, "inflight")? {
            let pair = sim_snap::as_items(entry, "inflight entry")?;
            if pair.len() != 2 {
                return Err(SnapshotError(
                    "inflight entry: expected [job, state]".into(),
                ));
            }
            inflight.insert(
                snap::decode_job_id(&pair[0], "inflight job")?,
                Inflight::decode_snapshot(&pair[1])?,
            );
        }
        let config = snap::decode_config(sim_snap::get(doc, "config")?)?;
        let speed = sim_snap::get_f64(doc, "speed")?;
        let sched = if let Ok(sched_doc) = sim_snap::get(doc, "sched") {
            snap::decode_sched(sched_doc)?
        } else {
            // Legacy snapshot (pre rtds-sched-snapshot/1): a bare
            // single-core plan; rebuild the degenerate protocol scheduler.
            let plan = snap::decode_plan(sim_snap::get(doc, "plan")?, "node plan")?;
            let base_speed = if config.uniform_machines { speed } else { 1.0 };
            SiteScheduler::from_parts(
                config.scheduler,
                SiteResources::default(),
                base_speed,
                config.preemptive,
                vec![plan],
                Vec::new(),
            )
        };
        Ok(RtdsNode {
            site: snap::decode_site(sim_snap::get(doc, "site")?, "node site")?,
            config,
            speed,
            pcs: PcsState::decode_snapshot(sim_snap::get(doc, "pcs")?)?,
            sphere: match sim_snap::get(doc, "sphere")? {
                Json::Null => None,
                other => Some(snap::decode_sphere(other)?),
            },
            sched,
            lock: match sim_snap::get(doc, "lock")? {
                Json::Null => None,
                other => {
                    let pair = sim_snap::as_items(other, "node lock")?;
                    if pair.len() != 2 {
                        return Err(SnapshotError("node lock: expected [holder, job]".into()));
                    }
                    Some((
                        snap::decode_site(&pair[0], "lock holder")?,
                        snap::decode_job_id(&pair[1], "lock job")?,
                    ))
                }
            },
            queued: sim_snap::get_items(doc, "queued")?
                .iter()
                .map(snap::decode_job)
                .collect::<Result<VecDeque<Job>, SnapshotError>>()?,
            inflight,
            guarantee: snap::decode_guarantee(sim_snap::get(doc, "guarantee")?)?,
            accepted: sim_snap::get_items(doc, "accepted")?
                .iter()
                .map(snap::decode_accepted)
                .collect::<Result<Vec<AcceptedJob>, SnapshotError>>()?,
            global_distances,
        })
    }
}

impl Inflight {
    fn encode_snapshot(&self) -> Json {
        Json::object(vec![
            ("job", snap::encode_job(&self.job)),
            ("acs", self.acs.encode_snapshot()),
            (
                "members",
                Json::Array(self.members.iter().map(crate::acs::encode_member).collect()),
            ),
            (
                "tpl",
                snap::encode_tasks_per_logical(&self.tasks_per_logical),
            ),
            (
                "validation",
                match &self.validation {
                    Some(v) => v.encode_snapshot(),
                    None => Json::Null,
                },
            ),
            ("started_at", sim_snap::f64_bits(self.started_at)),
            (
                "mapped_at",
                match self.mapped_at {
                    Some(t) => sim_snap::f64_bits(t),
                    None => Json::Null,
                },
            ),
        ])
    }

    fn decode_snapshot(doc: &Json) -> Result<Self, SnapshotError> {
        Ok(Inflight {
            job: snap::decode_job(sim_snap::get(doc, "job")?)?,
            acs: AcsCollection::decode_snapshot(sim_snap::get(doc, "acs")?)?,
            members: sim_snap::get_items(doc, "members")?
                .iter()
                .map(crate::acs::decode_member)
                .collect::<Result<Vec<AcsMember>, SnapshotError>>()?,
            tasks_per_logical: snap::decode_tasks_per_logical(
                sim_snap::get(doc, "tpl")?,
                "inflight tpl",
            )?,
            validation: match sim_snap::get(doc, "validation")? {
                Json::Null => None,
                other => Some(ValidationRound::decode_snapshot(other)?),
            },
            started_at: sim_snap::get_f64(doc, "started_at")?,
            mapped_at: match sim_snap::get(doc, "mapped_at")? {
                Json::Null => None,
                other => Some(sim_snap::f64_from_bits(other, "mapped_at")?),
            },
        })
    }
}

/// Total data volume the tasks of logical processor `l` consume from
/// predecessors mapped on *other* logical processors — the input data an
/// executing member must receive before running its share of the job.
fn cross_input_volume(graph: &TaskGraph, tasks_per_logical: &[Vec<TaskSpec>], l: usize) -> f64 {
    let mut logical_of: BTreeMap<usize, usize> = BTreeMap::new();
    for (i, specs) in tasks_per_logical.iter().enumerate() {
        for spec in specs {
            logical_of.insert(spec.task.0, i);
        }
    }
    let mut volume = 0.0;
    for spec in &tasks_per_logical[l] {
        for (pred, edge) in graph.predecessor_edges(spec.task) {
            if logical_of.get(&pred.0) != Some(&l) {
                volume += edge.data_volume;
            }
        }
    }
    volume
}

/// Records one `routing_fanout` sample per phase broadcast contained in a
/// PCS send batch (one `on_update` can cascade several phases), scoped by
/// routing phase so the per-phase fan-out distributions stay separable.
fn record_routing_fanout(sends: &[crate::pcs::PcsSend], ctx: &mut Context<'_, RtdsMsg>) {
    let site = ctx.site().0 as u32;
    let mut start = 0;
    while start < sends.len() {
        let phase = sends[start].phase;
        let run = sends[start..]
            .iter()
            .take_while(|s| s.phase == phase)
            .count();
        ctx.record_phase("routing_fanout", phase as u32, run as f64);
        // Routing work is site-scoped, not job-scoped: it records onto the
        // per-site routing root span.
        ctx.trace(SpanId::site_root(site), SpanId::NONE, || {
            TracePayload::RoutingFanout {
                phase: phase as u32,
                fanout: run as u32,
            }
        });
        start += run;
    }
}

/// The per-job root span (arrival + final verdict).
fn root_span(job: JobId) -> SpanId {
    SpanId::job_root(job.0)
}

/// The span of one protocol stage for one job on one site.
fn phase_span(job: JobId, phase: Phase, site: SiteId) -> SpanId {
    SpanId::derive(job.0, phase, site.0 as u32, 0)
}

impl Protocol for RtdsNode {
    type Msg = RtdsMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, RtdsMsg>) {
        let sends = self.pcs.start();
        record_routing_fanout(&sends, ctx);
        for send in sends {
            ctx.count("routing_update", 1);
            ctx.send(
                send.to,
                RtdsMsg::RoutingUpdate {
                    phase: send.phase,
                    lines: send.lines,
                },
            );
        }
        self.ensure_sphere();
    }

    fn on_message(&mut self, from: SiteId, msg: RtdsMsg, ctx: &mut Context<'_, RtdsMsg>) {
        match msg {
            RtdsMsg::RoutingUpdate { phase, lines } => {
                let sends = self.pcs.on_update(from, phase, lines);
                record_routing_fanout(&sends, ctx);
                for send in sends {
                    ctx.count("routing_update", 1);
                    ctx.send(
                        send.to,
                        RtdsMsg::RoutingUpdate {
                            phase: send.phase,
                            lines: send.lines,
                        },
                    );
                }
                self.ensure_sphere();
                // Arrivals deferred during the PCS construction can now be
                // examined.
                if self.pcs.is_finished() {
                    self.process_queue(ctx);
                }
            }
            RtdsMsg::JobArrival { job } => {
                self.handle_arrival(job, ctx, true);
            }
            RtdsMsg::Enroll { initiator, job } => {
                self.handle_enroll(initiator, job, ctx);
            }
            RtdsMsg::EnrollAck {
                job,
                surplus,
                speed,
            } => {
                if let Some(inflight) = self.inflight.get_mut(&job) {
                    inflight.acs.record_ack(from, surplus, speed);
                }
                self.try_finish_enrollment(job, ctx);
            }
            RtdsMsg::EnrollBusy { job } => {
                if let Some(inflight) = self.inflight.get_mut(&job) {
                    inflight.acs.record_busy(from);
                }
                self.try_finish_enrollment(job, ctx);
            }
            RtdsMsg::TrialMapping {
                job,
                tasks_per_logical,
            } => {
                self.handle_trial_mapping(from, job, tasks_per_logical, ctx);
            }
            RtdsMsg::ValidationReply { job, endorsable } => {
                if let Some(inflight) = self.inflight.get_mut(&job) {
                    if let Some(validation) = inflight.validation.as_mut() {
                        validation.record_reply(from, endorsable);
                    }
                }
                self.try_finish_validation(job, ctx);
            }
            RtdsMsg::Permutation {
                job,
                logical,
                tasks,
            } => {
                self.handle_permutation(job, logical, tasks, ctx);
            }
            RtdsMsg::TaskData { job: _, volume } => {
                // Input data landed after contending for bandwidth on the
                // flow plane; the reservation itself was committed when the
                // permutation arrived, so receipt is purely accounted.
                ctx.count("task_data_received", 1);
                ctx.record("task_data_volume_received", volume);
            }
            RtdsMsg::Unlock { job } => {
                let parent = match self.lock {
                    Some((initiator, locked)) if locked == job => {
                        phase_span(job, Phase::Enrollment, initiator)
                    }
                    _ => SpanId::NONE,
                };
                ctx.trace(
                    phase_span(job, Phase::Enrollment, self.site),
                    parent,
                    || TracePayload::Unlocked { job: job.0 },
                );
                self.unlock_for(job, ctx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtds_net::generators::{line, DelayDistribution};

    #[test]
    fn node_construction_and_accessors() {
        let net = line(3, DelayDistribution::Constant(1.0), 0);
        let node = NodeBuilder::new(SiteId(1))
            .neighbors(net.neighbors(SiteId(1)).to_vec())
            .build();
        assert_eq!(node.site(), SiteId(1));
        assert!(!node.is_locked());
        assert_eq!(node.queued_len(), 0);
        assert!(node.sphere().is_none());
        assert!(node.plan_is_empty());
        assert_eq!(node.plan_len(), 0);
        assert!(node.check_plan_invariants());
        assert_eq!(node.plans().len(), 1);
        assert!(node.scheduler().resources().is_degenerate());
        assert_eq!(node.guarantee.submitted, 0);
    }

    #[test]
    fn effective_speed_follows_uniform_machines_flag() {
        let net = line(2, DelayDistribution::Constant(1.0), 0);
        let mut cfg = RtdsConfig::default();
        let node = NodeBuilder::new(SiteId(0))
            .neighbors(net.neighbors(SiteId(0)).to_vec())
            .speed(2.5)
            .config(cfg)
            .build();
        assert_eq!(node.effective_speed(), 1.0);
        cfg.uniform_machines = true;
        let node = NodeBuilder::new(SiteId(0))
            .neighbors(net.neighbors(SiteId(0)).to_vec())
            .speed(2.5)
            .config(cfg)
            .build();
        assert_eq!(node.effective_speed(), 2.5);
        // The resource multiplier composes with the uniform-machines speed.
        let node = NodeBuilder::new(SiteId(0))
            .speed(2.5)
            .config(cfg)
            .resources(SiteResources::single_core(2.0))
            .build();
        assert_eq!(node.effective_speed(), 5.0);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_constructor_matches_the_builder() {
        let net = line(3, DelayDistribution::Constant(1.0), 0);
        let old = RtdsNode::new(
            SiteId(1),
            net.neighbors(SiteId(1)).to_vec(),
            2.0,
            RtdsConfig::default(),
            None,
        );
        let new = NodeBuilder::new(SiteId(1))
            .neighbors(net.neighbors(SiteId(1)).to_vec())
            .speed(2.0)
            .config(RtdsConfig::default())
            .build();
        assert_eq!(old.site(), new.site());
        assert_eq!(old.scheduler(), new.scheduler());
    }

    #[test]
    fn multicore_builder_sizes_the_scheduler() {
        let node = NodeBuilder::new(SiteId(0))
            .resources(SiteResources::multicore(4, 1.0))
            .build();
        assert_eq!(node.plans().len(), 4);
        assert_eq!(node.scheduler().kind(), rtds_sched::SchedulerKind::Protocol);
    }
}
