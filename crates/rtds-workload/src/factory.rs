//! Expansion of compact arrivals into concrete DAG jobs.
//!
//! A [`JobFactory`] bridges the workload layer to the protocol layer: it
//! pulls `(time, JobSpec)` pairs from any [`WorkloadSource`] and expands
//! each into a full [`rtds_graph::Job`] via a single reused
//! [`DagGenerator`], reseeded per job from the spec's seed — so a job is a
//! pure function of `(template, spec, time)` and a replayed trace
//! regenerates bit-identical jobs without the trace having to store graphs.
//! Job ids are assigned sequentially by the shared generator, exactly like
//! the batch path.
//!
//! The factory implements [`rtds_core::streaming::JobSource`], plugging
//! straight into [`rtds_core::RtdsSystem::run_streaming`].

use crate::source::WorkloadSource;
use rtds_core::streaming::JobSource;
use rtds_graph::generators::{CostDistribution, DagGenerator, DagShape, GeneratorConfig};
use rtds_graph::Job;
use rtds_metrics::MetricsRegistry;
use rtds_sim::json::Json;
use serde::{Deserialize, Serialize};

/// The per-stream job parameters a [`crate::spec::JobSpec`] does not carry:
/// DAG family, task-cost distribution, communication-to-computation ratio
/// and the deadline laxity-factor range.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobTemplate {
    /// DAG family of every job.
    pub shape: DagShape,
    /// Task cost distribution.
    pub costs: CostDistribution,
    /// Communication-to-computation ratio decorating edges with data
    /// volumes (0 = propagation-delay-only base model).
    pub ccr: f64,
    /// Deadline laxity factor range (deadline = release + factor × critical
    /// path).
    pub laxity: (f64, f64),
}

impl Default for JobTemplate {
    /// Matches the default scenario workload recipe.
    fn default() -> Self {
        JobTemplate {
            shape: DagShape::LayeredRandom {
                layers: 3,
                edge_prob: 0.3,
            },
            costs: CostDistribution::Uniform { min: 2.0, max: 9.0 },
            ccr: 0.0,
            laxity: (1.6, 2.6),
        }
    }
}

impl JobTemplate {
    /// A human-readable descriptor for trace headers and reports.
    pub fn describe(&self) -> Json {
        Json::str(format!(
            "shape {:?}, costs {:?}, ccr {}, laxity {:?}",
            self.shape, self.costs, self.ccr, self.laxity
        ))
    }
}

/// Expands a [`WorkloadSource`] into a stream of concrete jobs (see the
/// module docs).
///
/// The factory instruments the stream as it flows through: the
/// `interarrival` histogram records the gap between consecutive arrivals
/// (the jitter profile of the arrival process) and the `job_tasks`
/// histogram records the emitted task counts (the realized size mix). The
/// streaming runner collects both via [`JobSource::take_metrics`] into
/// [`rtds_core::StreamReport::metrics`].
#[derive(Debug)]
pub struct JobFactory<S: WorkloadSource> {
    source: S,
    generator: DagGenerator,
    metrics: MetricsRegistry,
    last_arrival: Option<f64>,
}

impl<S: WorkloadSource> JobFactory<S> {
    /// Creates the factory.
    pub fn new(source: S, template: JobTemplate) -> Self {
        let config = GeneratorConfig {
            task_count: 1, // overridden per job from the spec
            shape: template.shape,
            costs: template.costs,
            ccr: template.ccr,
            laxity_factor: template.laxity,
        };
        JobFactory {
            source,
            // The seed is irrelevant: every job reseeds from its spec.
            generator: DagGenerator::new(config, 0),
            metrics: MetricsRegistry::new(),
            last_arrival: None,
        }
    }

    /// Consumes the factory, returning the underlying source (e.g. to
    /// finish a [`crate::trace::RecordingSource`]).
    pub fn into_source(self) -> S {
        self.source
    }

    /// The stream telemetry accumulated so far (inter-arrival jitter and
    /// realized size mix).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }
}

impl<S: WorkloadSource> JobSource for JobFactory<S> {
    fn next_job(&mut self) -> Option<Job> {
        let (time, spec) = self.source.next_arrival()?;
        if let Some(last) = self.last_arrival {
            self.metrics.record("interarrival", time - last);
        }
        self.last_arrival = Some(time);
        self.metrics.record("job_tasks", spec.tasks as f64);
        self.generator.reseed(spec.seed);
        self.generator.set_task_count(spec.tasks);
        Some(self.generator.generate_job(spec.site, time))
    }

    fn take_metrics(&mut self) -> MetricsRegistry {
        std::mem::take(&mut self.metrics)
    }
}

/// Expands an entire source eagerly into a sorted job vector — the batch
/// form of the same workload, used by the streaming-vs-batch equivalence
/// tests and anywhere the classic [`rtds_core::RtdsSystem::submit_workload`]
/// path is wanted.
pub fn materialize(source: impl WorkloadSource, template: JobTemplate) -> Vec<Job> {
    let mut factory = JobFactory::new(source, template);
    let mut jobs = Vec::new();
    while let Some(job) = factory.next_job() {
        jobs.push(job);
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{OpenLoopSpec, RateProcess};
    use crate::spec::SizeMix;
    use rtds_graph::JobId;

    fn sample_spec() -> OpenLoopSpec {
        OpenLoopSpec {
            process: RateProcess::Poisson { rate: 0.5 },
            sizes: SizeMix::Uniform { min: 3, max: 9 },
            hotspots: 2,
            horizon: 80.0,
            max_jobs: 0,
        }
    }

    #[test]
    fn jobs_are_deterministic_and_sequential() {
        let a = materialize(sample_spec().build(6, 4), JobTemplate::default());
        let b = materialize(sample_spec().build(6, 4), JobTemplate::default());
        assert!(!a.is_empty());
        assert_eq!(a, b);
        for (i, job) in a.iter().enumerate() {
            assert_eq!(job.id, JobId(i as u64));
            assert!(job.arrival_site < 2);
            assert!((3..=9).contains(&job.graph.task_count()));
            assert!(job.deadline() > job.release());
        }
        // Sorted by arrival time.
        assert!(a.windows(2).all(|w| w[0].arrival_time <= w[1].arrival_time));
        // A different stream seed yields different jobs.
        let c = materialize(sample_spec().build(6, 5), JobTemplate::default());
        assert_ne!(a, c);
    }

    #[test]
    fn template_controls_the_expansion() {
        let chains = JobTemplate {
            shape: DagShape::Chain,
            ..JobTemplate::default()
        };
        let jobs = materialize(sample_spec().build(6, 4), chains);
        for job in &jobs {
            assert_eq!(job.graph.edge_count(), job.graph.task_count() - 1);
            assert_eq!(job.graph.longest_chain_len(), job.graph.task_count());
        }
        let described = chains.describe().render_compact();
        assert!(described.contains("Chain"), "{described}");
    }
}
