//! An "arbitrarily wide" network: the per-job message cost of RTDS stays flat
//! as the network grows, while global broadcast bidding grows linearly.
//!
//! Run with: `cargo run --release --example wide_network`

use rtds::baselines::{run_broadcast_bidding, BiddingConfig};
use rtds::core::{RtdsConfig, RtdsSystem};
use rtds::graph::generators::{CostDistribution, DagGenerator, DagShape, GeneratorConfig};
use rtds::graph::Job;
use rtds::net::generators::{barabasi_albert, DelayDistribution};
use rtds::net::Network;
use rtds::sim::arrivals::{ArrivalProcess, ArrivalSchedule};

fn workload(network: &Network, seed: u64) -> Vec<Job> {
    // A fixed number of hot sites receive bursts so that distribution is
    // actually needed; the rest of the network only provides capacity.
    let hot: Vec<_> = network.sites().take(4).collect();
    let schedule = ArrivalSchedule::generate_on_sites(
        ArrivalProcess::Poisson { rate: 0.05 },
        &hot,
        300.0,
        seed,
    );
    let cfg = GeneratorConfig {
        task_count: 8,
        shape: DagShape::ForkJoin,
        costs: CostDistribution::Uniform { min: 3.0, max: 9.0 },
        ccr: 0.0,
        laxity_factor: (1.6, 2.4),
    };
    let mut generator = DagGenerator::new(cfg, seed);
    schedule
        .arrivals()
        .iter()
        .map(|a| generator.generate_job(a.site.index(), a.time))
        .collect()
}

fn main() {
    println!(
        "{:>8} {:>10} {:>16} {:>16} {:>14} {:>14}",
        "sites", "jobs", "rtds msgs/job", "bcast msgs/job", "rtds ratio", "bcast ratio"
    );
    for &n in &[32usize, 64, 128, 256, 512] {
        let network = barabasi_albert(n, 2, DelayDistribution::Constant(1.0), 9);
        let jobs = workload(&network, 21);

        // Cap the ACS at 8 members: on scale-free graphs a hop-bounded sphere
        // around a hub would otherwise grow with the network.
        let config = RtdsConfig {
            max_acs_size: 8,
            ..RtdsConfig::default()
        };
        let mut system = RtdsSystem::new(network.clone(), config, 13);
        system.submit_workload(jobs.clone());
        let rtds = system.run();

        let bidding = run_broadcast_bidding(&network, &jobs, BiddingConfig::default());

        println!(
            "{:>8} {:>10} {:>16.1} {:>16.1} {:>14.3} {:>14.3}",
            n,
            jobs.len(),
            rtds.messages_per_job,
            bidding.messages_per_job().unwrap_or(f64::NAN),
            rtds.guarantee_ratio(),
            bidding.guarantee_ratio().unwrap_or(f64::NAN)
        );
        assert_eq!(rtds.deadline_misses(), 0);
    }
    println!();
    println!("RTDS distributes each job over a bounded Computing Sphere, so its");
    println!("per-job message cost is independent of the network size; the");
    println!("broadcast-bidding baseline floods the whole network and scales with it.");
}
