//! Deterministic span identities.
//!
//! A span groups the trace events of one protocol stage for one job on one
//! site. Its identity is *derived*, not allocated: [`SpanId::derive`] hashes
//! `(job_seed, phase, site, seq)` with a splitmix64-style mixer, so the same
//! protocol step produces the same span id in every run, on every thread
//! count, with no global counter to synchronise. Two traces of the same
//! seeded run are therefore byte-identical, and a sweep sharded over worker
//! threads produces the same per-cell trace as a single-threaded sweep.

/// Identity of one span. `SpanId::NONE` (the zero id) marks "no span" — the
/// parent of a root span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

/// The protocol stage a span belongs to (folded into the span id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Phase {
    /// The per-job root span (arrival and final verdict).
    Job = 1,
    /// The §5 local guarantee test on the arrival site.
    Acceptance = 2,
    /// The §8 ACS enrollment (initiator fan-out and member locks).
    Enrollment = 3,
    /// The §9/§12 Mapper and trial-mapping broadcast.
    Mapping = 4,
    /// The §10 validation round on a member site.
    Validation = 5,
    /// The §11 permutation dispatch and reservation commit.
    Dispatch = 6,
    /// Per-site routing spans (the §7 PCS construction — not job-scoped).
    Routing = 7,
    /// Protocol-agnostic spans (engine tests, custom protocols).
    Custom = 8,
}

/// One round of the splitmix64 output mixer (public-domain constants).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SpanId {
    /// The null span: parent of roots, never a real span identity.
    pub const NONE: SpanId = SpanId(0);

    /// Returns `true` for [`SpanId::NONE`].
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// Derives the span id for `(job_seed, phase, site, seq)`. For RTDS the
    /// job seed is the job id (deterministic per run); `seq` disambiguates
    /// repeated spans of the same phase on the same site (0 for the single
    /// occurrence the base protocol produces). The result is never
    /// [`SpanId::NONE`].
    pub fn derive(job_seed: u64, phase: Phase, site: u32, seq: u32) -> SpanId {
        let a = splitmix64(job_seed ^ ((phase as u64) << 56));
        let b = splitmix64(a ^ (((site as u64) << 32) | seq as u64));
        SpanId(if b == 0 { 1 } else { b })
    }

    /// The per-job root span (site-independent: every site talking about the
    /// job's final outcome records onto the same root).
    pub fn job_root(job_seed: u64) -> SpanId {
        SpanId::derive(job_seed, Phase::Job, u32::MAX, 0)
    }

    /// The per-site root span for non-job work (the PCS routing exchange).
    pub fn site_root(site: u32) -> SpanId {
        SpanId::derive(site as u64, Phase::Routing, site, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_stable_and_collision_free_locally() {
        let a = SpanId::derive(11, Phase::Acceptance, 3, 0);
        assert_eq!(a, SpanId::derive(11, Phase::Acceptance, 3, 0));
        assert_ne!(a, SpanId::derive(11, Phase::Acceptance, 4, 0));
        assert_ne!(a, SpanId::derive(11, Phase::Enrollment, 3, 0));
        assert_ne!(a, SpanId::derive(12, Phase::Acceptance, 3, 0));
        assert_ne!(a, SpanId::derive(11, Phase::Acceptance, 3, 1));
        assert!(!a.is_none());
        assert!(SpanId::NONE.is_none());
    }

    #[test]
    fn phase_and_site_do_not_alias_through_packing() {
        // A dense neighborhood of (job, phase, site, seq) values must stay
        // distinct — the packing puts phase and (site, seq) in separate
        // mixer rounds precisely so nearby inputs cannot cancel out.
        let mut seen = std::collections::BTreeSet::new();
        for job in 0..8u64 {
            for phase in [Phase::Job, Phase::Acceptance, Phase::Dispatch] {
                for site in 0..8u32 {
                    for seq in 0..2u32 {
                        assert!(seen.insert(SpanId::derive(job, phase, site, seq).0));
                    }
                }
            }
        }
        assert_eq!(seen.len(), 8 * 3 * 8 * 2);
    }

    #[test]
    fn roots_are_distinct_from_derived_spans() {
        assert_ne!(SpanId::job_root(5), SpanId::derive(5, Phase::Job, 0, 0));
        assert_ne!(SpanId::site_root(2), SpanId::site_root(3));
    }
}
