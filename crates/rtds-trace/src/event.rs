//! Typed trace events.
//!
//! A [`TraceEvent`] is a fixed-size `Copy` record: simulated time, site,
//! span/parent ids and a closed [`TracePayload`] enum with one variant per
//! protocol observation. Payloads carry numbers, never strings, so recording
//! an event allocates nothing — the human-readable form ([`TracePayload::describe`])
//! and the wire form (see [`crate::jsonl`]) are produced only on demand.

use crate::span::SpanId;
use std::fmt::Write as _;

/// Why a job arrival was deferred instead of examined immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeferReason {
    /// The site is locked for an in-flight distribution.
    SiteLocked,
    /// The one-time §7 PCS construction has not finished yet.
    PcsConstruction,
}

impl DeferReason {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            DeferReason::SiteLocked => "site-locked",
            DeferReason::PcsConstruction => "pcs-under-construction",
        }
    }

    pub(crate) fn from_wire(s: &str) -> Option<Self> {
        match s {
            "site-locked" => Some(DeferReason::SiteLocked),
            "pcs-under-construction" => Some(DeferReason::PcsConstruction),
            _ => None,
        }
    }
}

/// Why a job was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The computing sphere has no peers to distribute over.
    EmptySphere,
    /// The §9 Mapper produced no mapping.
    MapperFailed,
    /// Adjustment case (i): `M*` exceeds the execution window.
    AdjustmentWindow,
    /// The §10 maximum coupling is smaller than the logical processor count.
    CouplingTooSmall {
        /// Size of the best coupling found.
        size: u32,
        /// Logical processors that needed endorsement (`|U|`).
        required: u32,
    },
}

impl RejectReason {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::EmptySphere => "empty-sphere",
            RejectReason::MapperFailed => "mapper-failed",
            RejectReason::AdjustmentWindow => "adjustment-window",
            RejectReason::CouplingTooSmall { .. } => "coupling-too-small",
        }
    }
}

/// One typed observation. Every variant is `Copy` and numeric — see the
/// module docs. The wire field names are documented in `docs/TRACING.md`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TracePayload {
    /// A job arrived at its arrival site (root of the job's span tree).
    Arrival {
        /// Job id.
        job: u64,
        /// Tasks in the job's DAG.
        tasks: u32,
        /// Absolute deadline.
        deadline: f64,
    },
    /// The arrival was queued for later re-examination.
    ArrivalDeferred {
        /// Job id.
        job: u64,
        /// Why it was deferred.
        reason: DeferReason,
    },
    /// The §5 local guarantee test started.
    LocalTest {
        /// Job id.
        job: u64,
        /// Tasks in the job's DAG.
        tasks: u32,
        /// Absolute deadline.
        deadline: f64,
    },
    /// The local test succeeded; the job is guaranteed on the arrival site.
    LocalAccept {
        /// Job id.
        job: u64,
        /// Completion time of the local reservation.
        completion: f64,
    },
    /// The local test failed; distribution starts.
    LocalReject {
        /// Job id.
        job: u64,
    },
    /// The initiator contacted its PCS peers (§8 enrollment fan-out).
    AcsEnroll {
        /// Job id.
        job: u64,
        /// Peers contacted.
        peers: u32,
    },
    /// A member locked itself for the initiator and reported its surplus.
    AcsJoined {
        /// Job id.
        job: u64,
        /// Initiating site.
        initiator: u32,
        /// Surplus reported back.
        surplus: f64,
    },
    /// The §9 Mapper produced a trial mapping.
    TrialMapping {
        /// Job id.
        job: u64,
        /// Logical processors used (`|U|`).
        used: u32,
        /// Trial makespan `M`.
        makespan: f64,
        /// Critical-path bound `M*`.
        makespan_star: f64,
        /// Communication-delay over-estimate ω.
        omega: f64,
    },
    /// A member answered the §10 validation round.
    Validation {
        /// Job id.
        job: u64,
        /// Logical processors this member can endorse.
        endorsable: u32,
        /// Logical processors in the mapping.
        total: u32,
    },
    /// The initiator found a full coupling: the mapping is validated.
    MappingValidated {
        /// Job id.
        job: u64,
        /// Size of the coupling.
        coupling: u32,
    },
    /// Final verdict: the job is guaranteed.
    JobAccepted {
        /// Job id.
        job: u64,
        /// `true` if accepted after distribution (vs. locally).
        distributed: bool,
    },
    /// Final verdict: the job is rejected.
    Reject {
        /// Job id.
        job: u64,
        /// Why.
        reason: RejectReason,
    },
    /// A member was selected by the §11 permutation and commits tasks.
    Execute {
        /// Job id.
        job: u64,
        /// Logical processor this site plays.
        logical: u32,
    },
    /// A member enrolled but was not selected by the permutation.
    NotSelected {
        /// Job id.
        job: u64,
    },
    /// A committed placement failed (protocol-invariant violation counter).
    PlacementFailure {
        /// Job id.
        job: u64,
    },
    /// A member's lock was released by the initiator.
    Unlocked {
        /// Job id.
        job: u64,
    },
    /// One §7 PCS phase broadcast (per-site routing span, not job-scoped).
    RoutingFanout {
        /// Routing phase number.
        phase: u32,
        /// Messages sent in this phase batch.
        fanout: u32,
    },
    /// Protocol-agnostic marker (engine tests, custom protocols).
    Mark {
        /// Caller-defined tag.
        tag: u32,
        /// Caller-defined value.
        value: f64,
    },
}

/// A borrowed argument value, used when streaming an event's fields to a
/// sink or exporter without allocating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arg {
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A static string (wire names only — payloads never carry owned text).
    Str(&'static str),
    /// A boolean.
    Bool(bool),
}

impl TracePayload {
    /// Stable machine-readable kind (also the JSONL `"kind"` field). The
    /// names match the historical free-form trace kinds so golden tests and
    /// the Fig. 1 walkthrough keep working unchanged.
    pub fn kind(&self) -> &'static str {
        match self {
            TracePayload::Arrival { .. } => "arrival",
            TracePayload::ArrivalDeferred { .. } => "arrival-deferred",
            TracePayload::LocalTest { .. } => "local-test",
            TracePayload::LocalAccept { .. } => "local-accept",
            TracePayload::LocalReject { .. } => "local-reject",
            TracePayload::AcsEnroll { .. } => "acs-enroll",
            TracePayload::AcsJoined { .. } => "acs-joined",
            TracePayload::TrialMapping { .. } => "trial-mapping",
            TracePayload::Validation { .. } => "validation",
            TracePayload::MappingValidated { .. } => "mapping-validated",
            TracePayload::JobAccepted { .. } => "job-accepted",
            TracePayload::Reject { .. } => "reject",
            TracePayload::Execute { .. } => "execute",
            TracePayload::NotSelected { .. } => "not-selected",
            TracePayload::PlacementFailure { .. } => "placement-failure",
            TracePayload::Unlocked { .. } => "unlocked",
            TracePayload::RoutingFanout { .. } => "routing-fanout",
            TracePayload::Mark { .. } => "mark",
        }
    }

    /// Streams the payload's `(name, value)` fields in wire order.
    pub fn for_each_arg(&self, f: &mut dyn FnMut(&'static str, Arg)) {
        match *self {
            TracePayload::Arrival {
                job,
                tasks,
                deadline,
            }
            | TracePayload::LocalTest {
                job,
                tasks,
                deadline,
            } => {
                f("job", Arg::U64(job));
                f("tasks", Arg::U64(tasks as u64));
                f("deadline", Arg::F64(deadline));
            }
            TracePayload::ArrivalDeferred { job, reason } => {
                f("job", Arg::U64(job));
                f("reason", Arg::Str(reason.as_str()));
            }
            TracePayload::LocalAccept { job, completion } => {
                f("job", Arg::U64(job));
                f("completion", Arg::F64(completion));
            }
            TracePayload::LocalReject { job }
            | TracePayload::NotSelected { job }
            | TracePayload::PlacementFailure { job }
            | TracePayload::Unlocked { job } => {
                f("job", Arg::U64(job));
            }
            TracePayload::AcsEnroll { job, peers } => {
                f("job", Arg::U64(job));
                f("peers", Arg::U64(peers as u64));
            }
            TracePayload::AcsJoined {
                job,
                initiator,
                surplus,
            } => {
                f("job", Arg::U64(job));
                f("initiator", Arg::U64(initiator as u64));
                f("surplus", Arg::F64(surplus));
            }
            TracePayload::TrialMapping {
                job,
                used,
                makespan,
                makespan_star,
                omega,
            } => {
                f("job", Arg::U64(job));
                f("used", Arg::U64(used as u64));
                f("makespan", Arg::F64(makespan));
                f("makespan_star", Arg::F64(makespan_star));
                f("omega", Arg::F64(omega));
            }
            TracePayload::Validation {
                job,
                endorsable,
                total,
            } => {
                f("job", Arg::U64(job));
                f("endorsable", Arg::U64(endorsable as u64));
                f("total", Arg::U64(total as u64));
            }
            TracePayload::MappingValidated { job, coupling } => {
                f("job", Arg::U64(job));
                f("coupling", Arg::U64(coupling as u64));
            }
            TracePayload::JobAccepted { job, distributed } => {
                f("job", Arg::U64(job));
                f("distributed", Arg::Bool(distributed));
            }
            TracePayload::Reject { job, reason } => {
                f("job", Arg::U64(job));
                f("reason", Arg::Str(reason.as_str()));
                if let RejectReason::CouplingTooSmall { size, required } = reason {
                    f("size", Arg::U64(size as u64));
                    f("required", Arg::U64(required as u64));
                }
            }
            TracePayload::Execute { job, logical } => {
                f("job", Arg::U64(job));
                f("logical", Arg::U64(logical as u64));
            }
            TracePayload::RoutingFanout { phase, fanout } => {
                f("phase", Arg::U64(phase as u64));
                f("fanout", Arg::U64(fanout as u64));
            }
            TracePayload::Mark { tag, value } => {
                f("tag", Arg::U64(tag as u64));
                f("value", Arg::F64(value));
            }
        }
    }

    /// The job id the payload refers to, if it is job-scoped.
    pub fn job(&self) -> Option<u64> {
        let mut found = None;
        self.for_each_arg(&mut |name, arg| {
            if name == "job" {
                if let Arg::U64(j) = arg {
                    found = Some(j);
                }
            }
        });
        found
    }

    /// Human-readable one-line detail (allocates; render-time only).
    pub fn describe(&self) -> String {
        let mut out = String::new();
        match *self {
            TracePayload::Arrival {
                job,
                tasks,
                deadline,
            } => {
                let _ = write!(out, "J{job} arrived ({tasks} tasks, d = {deadline:.1})");
            }
            TracePayload::ArrivalDeferred { job, reason } => {
                let _ = write!(out, "J{job} deferred ({})", reason.as_str());
            }
            TracePayload::LocalTest {
                job,
                tasks,
                deadline,
            } => {
                let _ = write!(out, "J{job} ({tasks} tasks, d = {deadline:.1})");
            }
            TracePayload::LocalAccept { job, completion } => {
                let _ = write!(out, "J{job} completes at {completion:.3}");
            }
            TracePayload::LocalReject { job } => {
                let _ = write!(out, "J{job}");
            }
            TracePayload::AcsEnroll { job, peers } => {
                let _ = write!(out, "J{job} contacting {peers} PCS peers");
            }
            TracePayload::AcsJoined {
                job,
                initiator,
                surplus,
            } => {
                let _ = write!(out, "J{job} locked for s{initiator}, surplus {surplus:.3}");
            }
            TracePayload::TrialMapping {
                job,
                used,
                makespan,
                makespan_star,
                omega,
            } => {
                let _ = write!(
                    out,
                    "J{job}: |U| = {used}, M = {makespan:.3}, M* = {makespan_star:.3}, omega = {omega:.3}"
                );
            }
            TracePayload::Validation {
                job,
                endorsable,
                total,
            } => {
                let _ = write!(
                    out,
                    "J{job}: can endorse {endorsable} of {total} logical processors"
                );
            }
            TracePayload::MappingValidated { job, coupling } => {
                let _ = write!(out, "J{job} coupling of size {coupling} found");
            }
            TracePayload::JobAccepted { job, distributed } => {
                let how = if distributed { "distributed" } else { "local" };
                let _ = write!(out, "J{job} ({how})");
            }
            TracePayload::Reject { job, reason } => {
                let _ = write!(out, "J{job} ({})", reason.as_str());
                if let RejectReason::CouplingTooSmall { size, required } = reason {
                    let _ = write!(out, ": coupling {size} < |U| = {required}");
                }
            }
            TracePayload::Execute { job, logical } => {
                let _ = write!(out, "J{job} as logical processor {logical}");
            }
            TracePayload::NotSelected { job } => {
                let _ = write!(out, "J{job}");
            }
            TracePayload::PlacementFailure { job } => {
                let _ = write!(out, "J{job}");
            }
            TracePayload::Unlocked { job } => {
                let _ = write!(out, "J{job}");
            }
            TracePayload::RoutingFanout { phase, fanout } => {
                let _ = write!(out, "phase {phase}: {fanout} updates");
            }
            TracePayload::Mark { tag, value } => {
                let _ = write!(out, "tag {tag} = {value}");
            }
        }
        out
    }
}

/// One recorded event. `Copy` and allocation-free, so the ring sink is a
/// flat buffer and the null sink costs one branch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Simulated time of the event.
    pub time: f64,
    /// Site that recorded it.
    pub site: u32,
    /// Span this event belongs to (never [`SpanId::NONE`]).
    pub span: SpanId,
    /// Parent span ([`SpanId::NONE`] for roots).
    pub parent: SpanId,
    /// The typed observation.
    pub payload: TracePayload,
}

impl TraceEvent {
    /// Stable machine-readable kind of the payload.
    pub fn kind(&self) -> &'static str {
        self.payload.kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_match_the_historical_trace_vocabulary() {
        let p = TracePayload::TrialMapping {
            job: 3,
            used: 2,
            makespan: 10.0,
            makespan_star: 8.0,
            omega: 1.5,
        };
        assert_eq!(p.kind(), "trial-mapping");
        assert_eq!(p.job(), Some(3));
        assert!(p.describe().contains("|U| = 2"));
        let r = TracePayload::RoutingFanout {
            phase: 1,
            fanout: 4,
        };
        assert_eq!(r.job(), None);
    }

    #[test]
    fn reject_reason_emits_coupling_fields_only_when_present() {
        let mut names = Vec::new();
        TracePayload::Reject {
            job: 1,
            reason: RejectReason::CouplingTooSmall {
                size: 1,
                required: 3,
            },
        }
        .for_each_arg(&mut |n, _| names.push(n));
        assert_eq!(names, vec!["job", "reason", "size", "required"]);
        names.clear();
        TracePayload::Reject {
            job: 1,
            reason: RejectReason::MapperFailed,
        }
        .for_each_arg(&mut |n, _| names.push(n));
        assert_eq!(names, vec!["job", "reason"]);
    }

    #[test]
    fn defer_reason_round_trips_through_its_wire_name() {
        for r in [DeferReason::SiteLocked, DeferReason::PcsConstruction] {
            assert_eq!(DeferReason::from_wire(r.as_str()), Some(r));
        }
        assert_eq!(DeferReason::from_wire("nope"), None);
    }
}
