//! The `rtds-trace/1` JSONL wire format.
//!
//! One JSON object per line, in the same hand-rolled deterministic dialect as
//! `rtds_sim::json` (shortest-round-trip floats via `{:?}`, non-finite floats
//! as `null`, minimal escapes, compact objects, insertion-ordered keys). The
//! first line is a self-contained header:
//!
//! ```text
//! {"schema":"rtds-trace/1","scenario":"paper-baseline","seed":42}
//! ```
//!
//! followed by one event per line:
//!
//! ```text
//! {"t":0.0,"site":0,"span":17052..,"parent":0,"kind":"arrival","job":10,"tasks":3,"deadline":70.0}
//! ```
//!
//! Because the writer and [`parse_event_line`] agree field-for-field and the
//! float formats are shortest-round-trip, record → parse → re-render is a
//! byte fixpoint — mirroring the `rtds-workload-trace/1` design.

use crate::event::{Arg, DeferReason, RejectReason, TraceEvent, TracePayload};
use crate::span::SpanId;
use std::fmt::Write as _;
use std::io::BufRead;

/// Schema tag written into (and required in) every trace header.
pub const TRACE_SCHEMA: &str = "rtds-trace/1";

/// An owned header-metadata value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
}

// ---------------------------------------------------------------------------
// Writer — byte-for-byte the rtds_sim::json compact dialect.
// ---------------------------------------------------------------------------

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let _ = write!(out, "{x:?}");
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    write_escaped(out, s);
    out.push('"');
}

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::U64(u) => {
            let _ = write!(out, "{u}");
        }
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_str(out, s),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

/// Renders the header line (without trailing newline): the schema field
/// first, then `metadata` in the given order.
pub fn header_line(metadata: &[(&str, Value)]) -> String {
    let mut out = String::with_capacity(64);
    out.push_str("{\"schema\":\"");
    out.push_str(TRACE_SCHEMA);
    out.push('"');
    for (key, value) in metadata {
        out.push(',');
        write_str(&mut out, key);
        out.push(':');
        write_value(&mut out, value);
    }
    out.push('}');
    out
}

/// Appends one event line (without trailing newline) to `out`.
pub fn write_event_line(out: &mut String, event: &TraceEvent) {
    out.push_str("{\"t\":");
    write_f64(out, event.time);
    let _ = write!(out, ",\"site\":{}", event.site);
    let _ = write!(out, ",\"span\":{}", event.span.0);
    let _ = write!(out, ",\"parent\":{}", event.parent.0);
    out.push_str(",\"kind\":");
    write_str(out, event.kind());
    event.payload.for_each_arg(&mut |name, arg| {
        out.push(',');
        write_str(out, name);
        out.push(':');
        match arg {
            Arg::U64(u) => {
                let _ = write!(out, "{u}");
            }
            Arg::F64(x) => write_f64(out, x),
            Arg::Str(s) => write_str(out, s),
            Arg::Bool(b) => out.push_str(if b { "true" } else { "false" }),
        }
    });
    out.push('}');
}

/// Renders a complete trace document: header plus one line per event, each
/// newline-terminated.
pub fn render_jsonl(metadata: &[(&str, Value)], events: &[TraceEvent]) -> String {
    render_jsonl_with_header(&header_line(metadata), events)
}

/// Renders a trace document reusing an existing header line verbatim — the
/// re-render half of the byte-fixpoint round trip.
pub fn render_jsonl_with_header(header: &str, events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(header.len() + 1 + events.len() * 96);
    out.push_str(header);
    out.push('\n');
    for event in events {
        write_event_line(&mut out, event);
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// Parser — strict, flat, order-preserving.
// ---------------------------------------------------------------------------

/// A parsed scalar field value.
#[derive(Debug, Clone, PartialEq)]
enum Scalar {
    UInt(u64),
    Num(f64),
    Str(String),
    Bool(bool),
    Null,
}

/// One parsed line: field names and scalar values in file order.
#[derive(Debug, Clone)]
struct LineObject {
    fields: Vec<(String, Scalar)>,
}

impl LineObject {
    fn get(&self, name: &str) -> Option<&Scalar> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    fn u64_field(&self, name: &str) -> Result<u64, String> {
        match self.get(name) {
            Some(Scalar::UInt(u)) => Ok(*u),
            other => Err(format!("field {name:?}: expected integer, got {other:?}")),
        }
    }

    fn u32_field(&self, name: &str) -> Result<u32, String> {
        let u = self.u64_field(name)?;
        u32::try_from(u).map_err(|_| format!("field {name:?}: {u} exceeds u32"))
    }

    fn f64_field(&self, name: &str) -> Result<f64, String> {
        match self.get(name) {
            Some(Scalar::Num(x)) => Ok(*x),
            // An integer-valued field position may legally hold a float that
            // happened to print without a fraction — never the other way.
            Some(Scalar::UInt(u)) => Ok(*u as f64),
            Some(Scalar::Null) => Ok(f64::NAN),
            other => Err(format!("field {name:?}: expected number, got {other:?}")),
        }
    }

    fn str_field(&self, name: &str) -> Result<&str, String> {
        match self.get(name) {
            Some(Scalar::Str(s)) => Ok(s),
            other => Err(format!("field {name:?}: expected string, got {other:?}")),
        }
    }

    fn bool_field(&self, name: &str) -> Result<bool, String> {
        match self.get(name) {
            Some(Scalar::Bool(b)) => Ok(*b),
            other => Err(format!("field {name:?}: expected bool, got {other:?}")),
        }
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, String> {
        let b = self
            .peek()
            .ok_or_else(|| "unexpected end of line".to_string())?;
        self.pos += 1;
        Ok(b)
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        let got = self.bump()?;
        if got != want {
            return Err(format!(
                "expected {:?} at byte {}, got {:?}",
                want as char,
                self.pos - 1,
                got as char
            ));
        }
        Ok(())
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump()? as char;
                            let v = d
                                .to_digit(16)
                                .ok_or_else(|| format!("bad \\u escape digit {d:?}"))?;
                            code = code * 16 + v;
                        }
                        let c = char::from_u32(code)
                            .ok_or_else(|| format!("bad \\u escape code {code:#x}"))?;
                        out.push(c);
                    }
                    other => return Err(format!("unsupported escape \\{}", other as char)),
                },
                byte => {
                    // Re-assemble multi-byte UTF-8 sequences.
                    if byte < 0x80 {
                        out.push(byte as char);
                    } else {
                        let start = self.pos - 1;
                        let width = match byte {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            0xF0..=0xF7 => 4,
                            _ => return Err(format!("invalid UTF-8 lead byte {byte:#x}")),
                        };
                        for _ in 1..width {
                            self.bump()?;
                        }
                        let s = std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| format!("invalid UTF-8 in string: {e}"))?;
                        out.push_str(s);
                    }
                }
            }
        }
    }

    fn parse_scalar(&mut self) -> Result<Scalar, String> {
        match self.peek() {
            Some(b'"') => Ok(Scalar::Str(self.parse_string()?)),
            Some(b't') => {
                self.literal("true")?;
                Ok(Scalar::Bool(true))
            }
            Some(b'f') => {
                self.literal("false")?;
                Ok(Scalar::Bool(false))
            }
            Some(b'n') => {
                self.literal("null")?;
                Ok(Scalar::Null)
            }
            Some(b'-' | b'0'..=b'9') => {
                let start = self.pos;
                while matches!(
                    self.peek(),
                    Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
                ) {
                    self.pos += 1;
                }
                let token = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| format!("invalid number token: {e}"))?;
                if token.contains(['.', 'e', 'E']) {
                    token
                        .parse::<f64>()
                        .map(Scalar::Num)
                        .map_err(|e| format!("bad float {token:?}: {e}"))
                } else {
                    token
                        .parse::<u64>()
                        .map(Scalar::UInt)
                        .map_err(|e| format!("bad integer {token:?}: {e}"))
                }
            }
            other => Err(format!("unexpected value start {other:?}")),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        for &b in word.as_bytes() {
            self.expect(b)?;
        }
        Ok(())
    }
}

/// Parses one line as a flat JSON object of scalar fields.
fn parse_line_object(line: &str) -> Result<LineObject, String> {
    let mut cur = Cursor {
        bytes: line.trim_end().as_bytes(),
        pos: 0,
    };
    cur.expect(b'{')?;
    let mut fields = Vec::new();
    if cur.peek() == Some(b'}') {
        cur.pos += 1;
    } else {
        loop {
            let key = cur.parse_string()?;
            cur.expect(b':')?;
            let value = cur.parse_scalar()?;
            fields.push((key, value));
            match cur.bump()? {
                b',' => continue,
                b'}' => break,
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, got {:?}",
                        cur.pos - 1,
                        other as char
                    ))
                }
            }
        }
    }
    if cur.pos != cur.bytes.len() {
        return Err(format!("trailing bytes after object at byte {}", cur.pos));
    }
    Ok(LineObject { fields })
}

fn payload_from(kind: &str, obj: &LineObject) -> Result<TracePayload, String> {
    let payload = match kind {
        "arrival" => TracePayload::Arrival {
            job: obj.u64_field("job")?,
            tasks: obj.u32_field("tasks")?,
            deadline: obj.f64_field("deadline")?,
        },
        "arrival-deferred" => TracePayload::ArrivalDeferred {
            job: obj.u64_field("job")?,
            reason: {
                let wire = obj.str_field("reason")?;
                DeferReason::from_wire(wire)
                    .ok_or_else(|| format!("unknown defer reason {wire:?}"))?
            },
        },
        "local-test" => TracePayload::LocalTest {
            job: obj.u64_field("job")?,
            tasks: obj.u32_field("tasks")?,
            deadline: obj.f64_field("deadline")?,
        },
        "local-accept" => TracePayload::LocalAccept {
            job: obj.u64_field("job")?,
            completion: obj.f64_field("completion")?,
        },
        "local-reject" => TracePayload::LocalReject {
            job: obj.u64_field("job")?,
        },
        "acs-enroll" => TracePayload::AcsEnroll {
            job: obj.u64_field("job")?,
            peers: obj.u32_field("peers")?,
        },
        "acs-joined" => TracePayload::AcsJoined {
            job: obj.u64_field("job")?,
            initiator: obj.u32_field("initiator")?,
            surplus: obj.f64_field("surplus")?,
        },
        "trial-mapping" => TracePayload::TrialMapping {
            job: obj.u64_field("job")?,
            used: obj.u32_field("used")?,
            makespan: obj.f64_field("makespan")?,
            makespan_star: obj.f64_field("makespan_star")?,
            omega: obj.f64_field("omega")?,
        },
        "validation" => TracePayload::Validation {
            job: obj.u64_field("job")?,
            endorsable: obj.u32_field("endorsable")?,
            total: obj.u32_field("total")?,
        },
        "mapping-validated" => TracePayload::MappingValidated {
            job: obj.u64_field("job")?,
            coupling: obj.u32_field("coupling")?,
        },
        "job-accepted" => TracePayload::JobAccepted {
            job: obj.u64_field("job")?,
            distributed: obj.bool_field("distributed")?,
        },
        "reject" => TracePayload::Reject {
            job: obj.u64_field("job")?,
            reason: match obj.str_field("reason")? {
                "empty-sphere" => RejectReason::EmptySphere,
                "mapper-failed" => RejectReason::MapperFailed,
                "adjustment-window" => RejectReason::AdjustmentWindow,
                "coupling-too-small" => RejectReason::CouplingTooSmall {
                    size: obj.u32_field("size")?,
                    required: obj.u32_field("required")?,
                },
                other => return Err(format!("unknown reject reason {other:?}")),
            },
        },
        "execute" => TracePayload::Execute {
            job: obj.u64_field("job")?,
            logical: obj.u32_field("logical")?,
        },
        "not-selected" => TracePayload::NotSelected {
            job: obj.u64_field("job")?,
        },
        "placement-failure" => TracePayload::PlacementFailure {
            job: obj.u64_field("job")?,
        },
        "unlocked" => TracePayload::Unlocked {
            job: obj.u64_field("job")?,
        },
        "routing-fanout" => TracePayload::RoutingFanout {
            phase: obj.u32_field("phase")?,
            fanout: obj.u32_field("fanout")?,
        },
        "mark" => TracePayload::Mark {
            tag: obj.u32_field("tag")?,
            value: obj.f64_field("value")?,
        },
        other => return Err(format!("unknown event kind {other:?}")),
    };
    Ok(payload)
}

/// Parses one event line back into a [`TraceEvent`].
pub fn parse_event_line(line: &str) -> Result<TraceEvent, String> {
    let obj = parse_line_object(line)?;
    let kind = obj.str_field("kind")?.to_string();
    Ok(TraceEvent {
        time: obj.f64_field("t")?,
        site: obj.u32_field("site")?,
        span: SpanId(obj.u64_field("span")?),
        parent: SpanId(obj.u64_field("parent")?),
        payload: payload_from(&kind, &obj)?,
    })
}

/// Streaming reader over an `rtds-trace/1` document. Construction validates
/// the header; malformed lines panic with their line number, matching the
/// artifact-reader convention used by `rtds-workload`'s `TraceReader`.
pub struct JsonlReader<R: BufRead> {
    input: R,
    header_line: String,
    header: Vec<(String, Value)>,
    line_no: usize,
    buf: String,
}

impl<R: BufRead> JsonlReader<R> {
    /// Reads and validates the header line.
    ///
    /// # Panics
    /// If the input is empty, the header is malformed, or the schema is not
    /// [`TRACE_SCHEMA`].
    pub fn new(mut input: R) -> JsonlReader<R> {
        let mut header_line = String::new();
        let n = input
            .read_line(&mut header_line)
            .expect("rtds-trace: failed to read trace header");
        assert!(n > 0, "rtds-trace: empty trace input (missing header)");
        let trimmed = header_line.trim_end().to_string();
        let obj = parse_line_object(&trimmed)
            .unwrap_or_else(|e| panic!("rtds-trace: malformed header line: {e}"));
        match obj.get("schema") {
            Some(Scalar::Str(s)) if s == TRACE_SCHEMA => {}
            other => {
                panic!("rtds-trace: unsupported trace schema {other:?} (expected {TRACE_SCHEMA:?})")
            }
        }
        let header = obj
            .fields
            .iter()
            .filter(|(k, _)| k != "schema")
            .map(|(k, v)| {
                let value = match v {
                    Scalar::UInt(u) => Value::U64(*u),
                    Scalar::Num(x) => Value::F64(*x),
                    Scalar::Str(s) => Value::Str(s.clone()),
                    Scalar::Bool(b) => Value::Bool(*b),
                    Scalar::Null => Value::F64(f64::NAN),
                };
                (k.clone(), value)
            })
            .collect();
        JsonlReader {
            input,
            header_line: trimmed,
            header,
            line_no: 1,
            buf: String::new(),
        }
    }

    /// The raw header line (no trailing newline), reusable verbatim by
    /// [`render_jsonl_with_header`].
    pub fn header_line(&self) -> &str {
        &self.header_line
    }

    /// Header metadata fields (schema excluded), in file order.
    pub fn header(&self) -> &[(String, Value)] {
        &self.header
    }

    /// Reads the next event, or `None` at end of input.
    ///
    /// # Panics
    /// On I/O errors or malformed event lines (with the line number).
    pub fn next_event(&mut self) -> Option<TraceEvent> {
        loop {
            self.buf.clear();
            let n = self
                .input
                .read_line(&mut self.buf)
                .expect("rtds-trace: failed to read trace line");
            if n == 0 {
                return None;
            }
            self.line_no += 1;
            if self.buf.trim().is_empty() {
                continue;
            }
            let event = parse_event_line(&self.buf)
                .unwrap_or_else(|e| panic!("rtds-trace: line {}: {e}", self.line_no));
            return Some(event);
        }
    }
}

/// Parses a whole trace document, returning the raw header line and every
/// event. Errors (rather than panics) so tools can report bad inputs.
pub fn read_jsonl(text: &str) -> Result<(String, Vec<TraceEvent>), String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty trace document")?.to_string();
    let obj = parse_line_object(&header).map_err(|e| format!("header: {e}"))?;
    match obj.get("schema") {
        Some(Scalar::Str(s)) if s == TRACE_SCHEMA => {}
        other => {
            return Err(format!(
                "unsupported trace schema {other:?} (expected {TRACE_SCHEMA:?})"
            ))
        }
    }
    let mut events = Vec::new();
    for (i, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = parse_event_line(line).map_err(|e| format!("line {}: {e}", i + 2))?;
        events.push(event);
    }
    Ok((header, events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Phase;

    fn sample_events() -> Vec<TraceEvent> {
        let root = SpanId::job_root(10);
        let acc = SpanId::derive(10, Phase::Acceptance, 0, 0);
        vec![
            TraceEvent {
                time: 0.0,
                site: 0,
                span: root,
                parent: SpanId::NONE,
                payload: TracePayload::Arrival {
                    job: 10,
                    tasks: 3,
                    deadline: 70.0,
                },
            },
            TraceEvent {
                time: 0.0,
                site: 0,
                span: acc,
                parent: root,
                payload: TracePayload::LocalTest {
                    job: 10,
                    tasks: 3,
                    deadline: 70.0,
                },
            },
            TraceEvent {
                time: 0.125,
                site: 2,
                span: SpanId::derive(10, Phase::Enrollment, 2, 0),
                parent: SpanId::derive(10, Phase::Enrollment, 0, 0),
                payload: TracePayload::AcsJoined {
                    job: 10,
                    initiator: 0,
                    surplus: 12.5,
                },
            },
            TraceEvent {
                time: 1.5,
                site: 0,
                span: root,
                parent: SpanId::NONE,
                payload: TracePayload::Reject {
                    job: 10,
                    reason: RejectReason::CouplingTooSmall {
                        size: 1,
                        required: 3,
                    },
                },
            },
        ]
    }

    #[test]
    fn record_then_rerender_is_a_byte_fixpoint() {
        let metadata = [
            ("scenario", Value::Str("paper-baseline".to_string())),
            ("seed", Value::U64(42)),
        ];
        let doc = render_jsonl(&metadata, &sample_events());
        let (header, events) = read_jsonl(&doc).unwrap();
        assert_eq!(events, sample_events());
        let again = render_jsonl_with_header(&header, &events);
        assert_eq!(doc, again);
    }

    #[test]
    fn every_payload_variant_round_trips() {
        let variants = vec![
            TracePayload::Arrival {
                job: 1,
                tasks: 2,
                deadline: 3.5,
            },
            TracePayload::ArrivalDeferred {
                job: 1,
                reason: DeferReason::SiteLocked,
            },
            TracePayload::ArrivalDeferred {
                job: 1,
                reason: DeferReason::PcsConstruction,
            },
            TracePayload::LocalTest {
                job: 1,
                tasks: 2,
                deadline: 3.5,
            },
            TracePayload::LocalAccept {
                job: 1,
                completion: 9.25,
            },
            TracePayload::LocalReject { job: 1 },
            TracePayload::AcsEnroll { job: 1, peers: 4 },
            TracePayload::AcsJoined {
                job: 1,
                initiator: 2,
                surplus: 0.5,
            },
            TracePayload::TrialMapping {
                job: 1,
                used: 2,
                makespan: 10.0,
                makespan_star: 8.0,
                omega: 1.5,
            },
            TracePayload::Validation {
                job: 1,
                endorsable: 2,
                total: 3,
            },
            TracePayload::MappingValidated {
                job: 1,
                coupling: 3,
            },
            TracePayload::JobAccepted {
                job: 1,
                distributed: true,
            },
            TracePayload::JobAccepted {
                job: 1,
                distributed: false,
            },
            TracePayload::Reject {
                job: 1,
                reason: RejectReason::EmptySphere,
            },
            TracePayload::Reject {
                job: 1,
                reason: RejectReason::MapperFailed,
            },
            TracePayload::Reject {
                job: 1,
                reason: RejectReason::AdjustmentWindow,
            },
            TracePayload::Reject {
                job: 1,
                reason: RejectReason::CouplingTooSmall {
                    size: 1,
                    required: 2,
                },
            },
            TracePayload::Execute { job: 1, logical: 0 },
            TracePayload::NotSelected { job: 1 },
            TracePayload::PlacementFailure { job: 1 },
            TracePayload::Unlocked { job: 1 },
            TracePayload::RoutingFanout {
                phase: 2,
                fanout: 5,
            },
            TracePayload::Mark {
                tag: 7,
                value: 0.75,
            },
        ];
        for (i, payload) in variants.into_iter().enumerate() {
            let event = TraceEvent {
                time: i as f64 + 0.5,
                site: i as u32,
                span: SpanId::derive(1, Phase::Custom, i as u32, 0),
                parent: SpanId::NONE,
                payload,
            };
            let mut line = String::new();
            write_event_line(&mut line, &event);
            let parsed = parse_event_line(&line).unwrap();
            assert_eq!(parsed, event, "variant {i} failed to round-trip");
            let mut again = String::new();
            write_event_line(&mut again, &parsed);
            assert_eq!(line, again, "variant {i} is not a byte fixpoint");
        }
    }

    #[test]
    fn reader_streams_events_and_keeps_the_header_line() {
        let doc = render_jsonl(&[("seed", Value::U64(7))], &sample_events());
        let mut reader = JsonlReader::new(doc.as_bytes());
        assert!(reader.header_line().contains("\"seed\":7"));
        assert_eq!(reader.header().len(), 1);
        let mut n = 0;
        while let Some(event) = reader.next_event() {
            assert_eq!(event, sample_events()[n]);
            n += 1;
        }
        assert_eq!(n, sample_events().len());
    }

    #[test]
    fn reader_rejects_a_wrong_schema() {
        let result = std::panic::catch_unwind(|| {
            JsonlReader::new("{\"schema\":\"rtds-workload-trace/1\"}\n".as_bytes())
        });
        assert!(result.is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let header = header_line(&[("label", Value::Str("a\"b\\c\nd\te\u{1}".to_string()))]);
        let obj = parse_line_object(&header).unwrap();
        assert_eq!(
            obj.get("label"),
            Some(&Scalar::Str("a\"b\\c\nd\te\u{1}".to_string()))
        );
    }
}
