//! # rtds-sched — the per-site local scheduler of the RTDS paper
//!
//! Every site runs its own local scheduler (§1, §5): it keeps a *scheduling
//! plan* of task reservations already accepted, answers the §5 local
//! guarantee test ("can all tasks of this DAG be scheduled in-between tasks
//! already accepted, before the deadline?"), answers the §10 validation
//! question ("is this set of tasks with releases and deadlines locally
//! satisfiable?"), and exposes the §2 *surplus* (idle time over an
//! observation window) used by the Mapper to estimate execution durations on
//! remote sites.
//!
//! Modules:
//!
//! * [`interval`] — closed-open time intervals and idle-window arithmetic,
//! * [`plan`] — [`plan::SchedulePlan`]: committed reservations, idle-window
//!   enumeration, non-preemptive and preemptive insertion, surplus,
//! * [`admission`] — the §5 whole-DAG local guarantee test,
//! * [`feasibility`] — the §10 per-logical-processor satisfiability test,
//! * [`mod@surplus`] — observation-window surplus and busyness helpers,
//! * [`executor`] — turns committed reservations into completion records and
//!   deadline-miss checks (the run-time side of the computation processor),
//! * [`resources`] — the multicore site resource model
//!   ([`resources::SiteResources`], per-task [`resources::TaskDemand`] with
//!   amdahl/linear/flat [`resources::SpeedupFn`] laws),
//! * [`scheduler`] — the pluggable [`scheduler::Scheduler`] trait over
//!   per-core plans, with the paper's protocol policy plus HEFT-style and
//!   one-step-lookahead baselines; the `cores = 1, memory = ∞` degenerate
//!   case delegates verbatim to [`admission`] / [`feasibility`], keeping all
//!   pre-multicore behaviour bit-identical.
//!
//! Jobs and task graphs come from [`rtds_graph`]; the admission and
//! satisfiability answers computed here feed the protocol node of
//! [`rtds_core`](../rtds_core/index.html) (§5 local test, §10 validation)
//! and every baseline in
//! [`rtds_baselines`](../rtds_baselines/index.html).

pub mod admission;
pub mod executor;
pub mod feasibility;
pub mod interval;
pub mod plan;
pub mod resources;
pub mod scheduler;
pub mod surplus;

pub use admission::{admit_dag_locally, DagAdmission};
pub use feasibility::{satisfiable, TaskRequest};
pub use interval::TimeInterval;
pub use plan::{PlanError, Reservation, SchedulePlan};
pub use resources::{SiteResources, SpeedupFn, TaskDemand};
pub use scheduler::{
    brute_force_satisfiable, heft_upward_rank, CoreId, DagSchedule, HeftScheduler,
    LookaheadScheduler, MemHold, Placement, ProtocolScheduler, Scheduler, SchedulerKind,
    SiteScheduler,
};
pub use surplus::{busyness, surplus};
