//! `exp_perf` — the fixed performance suite behind the `BENCH_<n>.json`
//! trajectory.
//!
//! Runs the paper-baseline scenario plus three registry scenarios scaled to
//! 16/64/256 sites (see [`rtds_bench::perf`]), printing a throughput table
//! and writing the deterministic-schema JSON report. Timings (`wall_ms`,
//! `events_per_sec`) are the only nondeterministic fields; everything else
//! is a pure function of `--seed`.
//!
//! ```text
//! exp_perf [--seed <u64>] [--json <path>] [--smoke]
//! ```
//!
//! `--smoke` runs only the native paper baseline and the 16-site tier (the
//! CI smoke configuration).

use rtds_bench::perf::{run_perf_suite, PERF_TIERS};
use rtds_bench::{write_json_report, ExpArgs};

fn main() {
    let args = ExpArgs::parse(&["smoke"]);
    let seed = args.seed(7);
    let smoke = args.has("smoke");
    println!(
        "exp_perf: fixed suite, seed {seed}{}",
        if smoke { ", smoke tier only" } else { "" }
    );
    println!();
    println!(
        "{:<26} {:>5} {:>5} {:>6} {:>9} {:>9} {:>10} {:>9} {:>12}",
        "workload", "sites", "jobs", "ratio", "msgs", "msgs/job", "events", "wall ms", "events/s"
    );
    let report = run_perf_suite(seed, smoke);
    for w in &report.workloads {
        println!(
            "{:<26} {:>5} {:>5} {:>6.3} {:>9} {:>9.1} {:>10} {:>9.1} {:>12.0}",
            w.name,
            w.sites,
            w.submitted,
            w.guarantee_ratio,
            w.messages_sent,
            w.messages_per_job,
            w.events_processed,
            w.wall.as_secs_f64() * 1e3,
            w.events_per_sec()
        );
    }
    println!();
    for &tier in &PERF_TIERS {
        if report.workloads.iter().any(|w| w.tier == tier) {
            println!(
                "tier {tier:>3} sites: {:>12.0} events/s",
                report.tier_events_per_sec(tier)
            );
        }
    }
    if let Some(path) = args.json_path() {
        write_json_report(path, &report.to_json(true));
    }
}
