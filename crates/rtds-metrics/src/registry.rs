//! The named-instrument registry: counters, gauges and histograms under
//! `&'static str` names with optional scoped labels.
//!
//! Instruments are keyed by a static name (every instrument name in the
//! workspace is a literal, so the hot path never allocates a `String` per
//! bump) plus a [`Scope`] label — `Global`, `Phase(n)` (one routing-exchange
//! phase, one harvest pass, …) or `Site(n)` (one site of the simulated
//! network). Storage is ordered (`BTreeMap` keyed by name then scope), so
//! iteration order — and therefore any JSON rendering — is deterministic.
//!
//! [`MetricsRegistry::merge`] folds a whole registry into another:
//! counters add, gauges fold by maximum, histograms merge bucket-wise. All
//! three operations are associative and commutative, which makes a merged
//! registry independent of merge order — the property the sharded sweep
//! runner and the per-scenario aggregates rely on for byte-identical
//! reports at any thread count.

use crate::histogram::Histogram;
use std::collections::BTreeMap;

/// The label dimension of an instrument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Scope {
    /// Unscoped (the default for [`MetricsRegistry::add`] and friends).
    Global,
    /// One phase of a phased computation (routing exchange, harvest, …).
    Phase(u32),
    /// One site of the simulated network.
    Site(u32),
}

impl Scope {
    /// The suffix appended to the instrument name in flattened exports
    /// (empty for `Global`, `/phase<n>` and `/site<n>` otherwise).
    pub fn suffix(&self) -> String {
        match self {
            Scope::Global => String::new(),
            Scope::Phase(p) => format!("/phase{p}"),
            Scope::Site(s) => format!("/site{s}"),
        }
    }
}

/// A gauge: the last value set and the peak (high-water mark) ever set.
/// Merging two gauges keeps the maxima of both fields, so a merged gauge
/// reports the global high-water mark regardless of merge order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gauge {
    /// Most recently set value (under merge: the maximum of the two).
    pub last: f64,
    /// Largest value ever set.
    pub peak: f64,
}

impl Gauge {
    fn set(&mut self, value: f64) {
        self.last = value;
        if value > self.peak {
            self.peak = value;
        }
    }

    fn merge(&mut self, other: &Gauge) {
        self.last = self.last.max(other.last);
        self.peak = self.peak.max(other.peak);
    }
}

/// Open-addressed `(name ptr, name len) → slot` cache backing the counter
/// hot path. Every counter name in the workspace is a `&'static str`
/// literal, so its address is stable for the life of the process and can
/// key a hash lookup with no byte comparison at all on a hit. Distinct
/// literals with equal content (possible across codegen units) simply
/// occupy two cache entries pointing at the same slot — the canonical
/// name→slot map resolves content equality on the one-time miss path.
#[derive(Debug, Clone, Default)]
struct CounterIndex {
    /// `(ptr, len, slot)`; `ptr == 0` marks an empty bucket (no real
    /// `&'static str` has address zero). Length is a power of two.
    buckets: Vec<(usize, u32, u32)>,
    len: usize,
}

impl CounterIndex {
    #[inline]
    fn bucket_mask(&self) -> usize {
        self.buckets.len() - 1
    }

    #[inline]
    fn probe_start(&self, ptr: usize) -> usize {
        // Fibonacci hashing on the address; low bits of static addresses
        // are alignment-biased, the multiply spreads them.
        let h = (ptr as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & self.bucket_mask()
    }

    #[inline]
    fn get(&self, ptr: usize, len: u32) -> Option<u32> {
        if self.buckets.is_empty() {
            return None;
        }
        let mask = self.bucket_mask();
        let mut i = self.probe_start(ptr);
        loop {
            let (p, l, slot) = self.buckets[i];
            if p == ptr && l == len {
                return Some(slot);
            }
            if p == 0 {
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    fn insert(&mut self, ptr: usize, len: u32, slot: u32) {
        // Keep load below 1/2 so hit probes stay short.
        if self.buckets.len() < 2 * (self.len + 1) {
            let new_cap = (self.buckets.len() * 2).max(64);
            let old = std::mem::replace(&mut self.buckets, vec![(0, 0, 0); new_cap]);
            for (p, l, s) in old {
                if p != 0 {
                    self.insert_raw(p, l, s);
                }
            }
        }
        if self.insert_raw(ptr, len, slot) {
            self.len += 1;
        }
    }

    /// Inserts without growing; returns `false` if the key was present.
    fn insert_raw(&mut self, ptr: usize, len: u32, slot: u32) -> bool {
        let mask = self.bucket_mask();
        let mut i = self.probe_start(ptr);
        while self.buckets[i].0 != 0 {
            if self.buckets[i].0 == ptr && self.buckets[i].1 == len {
                return false;
            }
            i = (i + 1) & mask;
        }
        self.buckets[i] = (ptr, len, slot);
        true
    }
}

/// The registry of named instruments (see the module docs).
///
/// Global counters — the by-far hottest instrument (several bumps per
/// protocol message) — live in a dense `Vec<u64>` of slots. A bump is a
/// pointer-keyed cache hit (`CounterIndex`) plus one array add; the
/// ordered name→slot map is consulted only the first time each name (by
/// address) is seen and for exports, which iterate it in name order so
/// every rendering stays deterministic. The rarer scoped counters, and
/// the cold gauges and histograms, use nested per-scope maps.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    /// `Scope::Global` counter values, indexed by slot (creation order).
    counter_slots: Vec<u64>,
    /// Canonical name → slot map; iteration order is export order.
    counter_names: BTreeMap<&'static str, usize>,
    /// Hot-path address cache (derived state, never compared).
    counter_index: CounterIndex,
    /// Non-global counters only (`add_scoped` with `Global` routes to the
    /// flat slots, keeping the representation canonical).
    scoped_counters: BTreeMap<&'static str, BTreeMap<Scope, u64>>,
    gauges: BTreeMap<&'static str, BTreeMap<Scope, Gauge>>,
    histograms: BTreeMap<&'static str, BTreeMap<Scope, Histogram>>,
}

impl PartialEq for MetricsRegistry {
    /// Equality compares name → value (slot numbering and the address
    /// cache are representation details that differ between registries
    /// whose counters were first touched in different orders).
    fn eq(&self, other: &Self) -> bool {
        self.counter_names.len() == other.counter_names.len()
            && self.counter_names.iter().all(|(name, &slot)| {
                other
                    .counter_names
                    .get(name)
                    .map(|&o| other.counter_slots[o])
                    == Some(self.counter_slots[slot])
            })
            && self.scoped_counters == other.scoped_counters
            && self.gauges == other.gauges
            && self.histograms == other.histograms
    }
}

impl MetricsRegistry {
    /// An empty registry (the identity element of [`MetricsRegistry::merge`]).
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Whether no instrument was ever touched.
    pub fn is_empty(&self) -> bool {
        self.counter_names.is_empty()
            && self.scoped_counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
    }

    // ----- counters -------------------------------------------------------

    /// Adds to a global counter, creating it at zero if needed. One
    /// address-cache probe plus one array add — this is the
    /// per-protocol-message hot path.
    #[inline]
    pub fn add(&mut self, name: &'static str, amount: u64) {
        let ptr = name.as_ptr() as usize;
        let len = name.len() as u32;
        if let Some(slot) = self.counter_index.get(ptr, len) {
            self.counter_slots[slot as usize] += amount;
        } else {
            self.add_miss(name, amount);
        }
    }

    /// Cache-miss half of [`MetricsRegistry::add`]: resolve (or create)
    /// the canonical slot, then remember this address for next time.
    #[cold]
    fn add_miss(&mut self, name: &'static str, amount: u64) {
        let slot = self.counter_slot(name);
        self.counter_index
            .insert(name.as_ptr() as usize, name.len() as u32, slot as u32);
        self.counter_slots[slot] += amount;
    }

    /// Slot of a global counter in the canonical map, creating it at zero.
    fn counter_slot(&mut self, name: &'static str) -> usize {
        match self.counter_names.get(name) {
            Some(&slot) => slot,
            None => {
                let slot = self.counter_slots.len();
                self.counter_slots.push(0);
                self.counter_names.insert(name, slot);
                slot
            }
        }
    }

    /// Adds to a scoped counter.
    pub fn add_scoped(&mut self, name: &'static str, scope: Scope, amount: u64) {
        match scope {
            Scope::Global => self.add(name, amount),
            scope => {
                *self
                    .scoped_counters
                    .entry(name)
                    .or_default()
                    .entry(scope)
                    .or_insert(0) += amount;
            }
        }
    }

    /// Value of a global counter by canonical-name lookup (zero if never
    /// touched).
    fn global_counter(&self, name: &str) -> u64 {
        self.counter_names
            .get(name)
            .map(|&slot| self.counter_slots[slot])
            .unwrap_or(0)
    }

    /// Total of a counter across all scopes (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.global_counter(name)
            + self
                .scoped_counters
                .get(name)
                .map(|scopes| scopes.values().sum())
                .unwrap_or(0)
    }

    /// Value of one scoped counter entry (zero if never touched).
    pub fn counter_scoped(&self, name: &str, scope: Scope) -> u64 {
        match scope {
            Scope::Global => self.global_counter(name),
            scope => self
                .scoped_counters
                .get(name)
                .and_then(|scopes| scopes.get(&scope).copied())
                .unwrap_or(0),
        }
    }

    /// The global (unscoped) counters in name order — the raw state behind
    /// [`MetricsRegistry::counter_families`], exposed for snapshotting.
    pub fn global_counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counter_names
            .iter()
            .map(|(name, &slot)| (*name, self.counter_slots[slot]))
    }

    /// The non-global counter families in name order, for snapshotting.
    pub fn scoped_counter_families(
        &self,
    ) -> impl Iterator<Item = (&'static str, &BTreeMap<Scope, u64>)> {
        self.scoped_counters.iter().map(|(k, v)| (*k, v))
    }

    /// All counter families in name order: `(name, per-scope values)` with
    /// the scopes of each name in `Scope` order (`Global` first). Export
    /// path — allocates the merged view.
    pub fn counter_families(&self) -> Vec<(&'static str, Vec<(Scope, u64)>)> {
        let mut families: BTreeMap<&'static str, Vec<(Scope, u64)>> = BTreeMap::new();
        for (name, &slot) in &self.counter_names {
            families
                .entry(name)
                .or_default()
                .push((Scope::Global, self.counter_slots[slot]));
        }
        for (name, scopes) in &self.scoped_counters {
            let family = families.entry(name).or_default();
            family.extend(scopes.iter().map(|(s, v)| (*s, *v)));
            // Global (pushed first when present) already precedes the
            // nested scopes, which iterate in Scope order themselves.
        }
        families.into_iter().collect()
    }

    // ----- gauges ---------------------------------------------------------

    /// Sets a global gauge (tracks both the last and the peak value).
    pub fn gauge_set(&mut self, name: &'static str, value: f64) {
        self.gauge_set_scoped(name, Scope::Global, value);
    }

    /// Sets a scoped gauge.
    pub fn gauge_set_scoped(&mut self, name: &'static str, scope: Scope, value: f64) {
        self.gauges
            .entry(name)
            .or_default()
            .entry(scope)
            .or_insert(Gauge {
                last: f64::NEG_INFINITY,
                peak: f64::NEG_INFINITY,
            })
            .set(value);
    }

    /// Restores a gauge entry verbatim (snapshot path — unlike
    /// [`MetricsRegistry::gauge_set_scoped`] this can install a `last`
    /// below the recorded `peak`).
    pub fn gauge_restore(&mut self, name: &'static str, scope: Scope, gauge: Gauge) {
        self.gauges.entry(name).or_default().insert(scope, gauge);
    }

    /// A gauge merged across all its scopes (None if never set).
    pub fn gauge(&self, name: &str) -> Option<Gauge> {
        let scopes = self.gauges.get(name)?;
        let mut merged: Option<Gauge> = None;
        for g in scopes.values() {
            match merged.as_mut() {
                Some(m) => m.merge(g),
                None => merged = Some(*g),
            }
        }
        merged
    }

    /// One scoped gauge entry.
    pub fn gauge_scoped(&self, name: &str, scope: Scope) -> Option<Gauge> {
        self.gauges
            .get(name)
            .and_then(|scopes| scopes.get(&scope))
            .copied()
    }

    /// All gauge families in name order.
    pub fn gauge_families(&self) -> impl Iterator<Item = (&'static str, &BTreeMap<Scope, Gauge>)> {
        self.gauges.iter().map(|(k, v)| (*k, v))
    }

    // ----- histograms -----------------------------------------------------

    /// Records a sample into a global histogram.
    pub fn record(&mut self, name: &'static str, value: f64) {
        self.record_scoped(name, Scope::Global, value);
    }

    /// Records a sample into a scoped histogram.
    pub fn record_scoped(&mut self, name: &'static str, scope: Scope, value: f64) {
        self.histograms
            .entry(name)
            .or_default()
            .entry(scope)
            .or_default()
            .record(value);
    }

    /// Restores a histogram entry verbatim (snapshot path).
    pub fn histogram_restore(&mut self, name: &'static str, scope: Scope, histogram: Histogram) {
        self.histograms
            .entry(name)
            .or_default()
            .insert(scope, histogram);
    }

    /// A histogram merged across all its scopes (empty if never recorded).
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut merged = Histogram::new();
        if let Some(scopes) = self.histograms.get(name) {
            for h in scopes.values() {
                merged.merge(h);
            }
        }
        merged
    }

    /// One scoped histogram entry.
    pub fn histogram_scoped(&self, name: &str, scope: Scope) -> Option<&Histogram> {
        self.histograms
            .get(name)
            .and_then(|scopes| scopes.get(&scope))
    }

    /// All histogram families in name order.
    pub fn histogram_families(
        &self,
    ) -> impl Iterator<Item = (&'static str, &BTreeMap<Scope, Histogram>)> {
        self.histograms.iter().map(|(k, v)| (*k, v))
    }

    // ----- aggregation ----------------------------------------------------

    /// Folds another registry into this one: counters add, gauges keep
    /// maxima, histograms merge bucket-wise. Associative and commutative,
    /// with the empty registry as identity.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, &slot) in &other.counter_names {
            let mine = self.counter_slot(name);
            self.counter_slots[mine] += other.counter_slots[slot];
        }
        for (name, scopes) in &other.scoped_counters {
            let mine = self.scoped_counters.entry(name).or_default();
            for (scope, value) in scopes {
                *mine.entry(*scope).or_insert(0) += value;
            }
        }
        for (name, scopes) in &other.gauges {
            let mine = self.gauges.entry(name).or_default();
            for (scope, gauge) in scopes {
                mine.entry(*scope).or_insert(*gauge).merge(gauge);
            }
        }
        for (name, scopes) in &other.histograms {
            let mine = self.histograms.entry(name).or_default();
            for (scope, histogram) in scopes {
                mine.entry(*scope).or_default().merge(histogram);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_total_across_scopes() {
        let mut m = MetricsRegistry::new();
        assert!(m.is_empty());
        m.add("msgs", 3);
        m.add_scoped("msgs", Scope::Site(2), 4);
        m.add_scoped("msgs", Scope::Phase(1), 1);
        assert_eq!(m.counter("msgs"), 8);
        assert_eq!(m.counter_scoped("msgs", Scope::Global), 3);
        assert_eq!(m.counter_scoped("msgs", Scope::Site(2)), 4);
        assert_eq!(m.counter("absent"), 0);
        assert!(!m.is_empty());
        // Family iteration surfaces scopes in Ord order: Global, Phase, Site.
        let families = m.counter_families();
        let (name, scopes) = &families[0];
        assert_eq!(*name, "msgs");
        let order: Vec<Scope> = scopes.iter().map(|(s, _)| *s).collect();
        assert_eq!(order, vec![Scope::Global, Scope::Phase(1), Scope::Site(2)]);
        // A purely scoped counter still shows up as a family.
        let mut scoped_only = MetricsRegistry::new();
        scoped_only.add_scoped("only", Scope::Phase(4), 2);
        assert_eq!(scoped_only.counter("only"), 2);
        assert_eq!(scoped_only.counter_families().len(), 1);
    }

    #[test]
    fn gauges_track_last_and_peak() {
        let mut m = MetricsRegistry::new();
        m.gauge_set("inflight", 5.0);
        m.gauge_set("inflight", 12.0);
        m.gauge_set("inflight", 3.0);
        let g = m.gauge("inflight").unwrap();
        assert_eq!(g.last, 3.0);
        assert_eq!(g.peak, 12.0);
        assert!(m.gauge("absent").is_none());
        m.gauge_set_scoped("inflight", Scope::Site(1), 40.0);
        // The merged view keeps the global high-water mark.
        assert_eq!(m.gauge("inflight").unwrap().peak, 40.0);
        assert_eq!(
            m.gauge_scoped("inflight", Scope::Global).unwrap().peak,
            12.0
        );
    }

    #[test]
    fn histograms_roll_up_across_scopes() {
        let mut m = MetricsRegistry::new();
        m.record_scoped("fanout", Scope::Phase(1), 4.0);
        m.record_scoped("fanout", Scope::Phase(2), 4.0);
        m.record_scoped("fanout", Scope::Phase(2), 16.0);
        assert_eq!(m.histogram("fanout").count(), 3);
        assert_eq!(m.histogram("fanout").max(), 16.0);
        assert_eq!(
            m.histogram_scoped("fanout", Scope::Phase(2))
                .unwrap()
                .count(),
            2
        );
        assert!(m.histogram_scoped("fanout", Scope::Site(9)).is_none());
        assert!(m.histogram("absent").is_empty());
    }

    #[test]
    fn merge_combines_every_family() {
        let mut a = MetricsRegistry::new();
        a.add("c", 1);
        a.gauge_set("g", 10.0);
        a.record("h", 2.0);
        let mut b = MetricsRegistry::new();
        b.add("c", 2);
        b.add_scoped("c", Scope::Site(0), 5);
        b.gauge_set("g", 4.0);
        b.record("h", 50.0);
        b.record_scoped("h", Scope::Phase(3), 1.0);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("c"), 8);
        assert_eq!(ab.gauge("g").unwrap().peak, 10.0);
        assert_eq!(ab.histogram("h").count(), 3);
        // Identity.
        let mut with_empty = ab.clone();
        with_empty.merge(&MetricsRegistry::new());
        assert_eq!(with_empty, ab);
    }

    #[test]
    fn equality_ignores_slot_creation_order() {
        // Same final counts reached through different first-touch orders:
        // slot numbering differs, registries must still compare equal.
        let mut a = MetricsRegistry::new();
        a.add("x", 1);
        a.add("y", 2);
        let mut b = MetricsRegistry::new();
        b.add("y", 2);
        b.add("x", 1);
        assert_eq!(a, b);
        b.add("x", 1);
        assert_ne!(a, b);
        // Many distinct names: exercises index growth past the initial
        // table size and the canonical fallback.
        const NAMES: [&str; 20] = [
            "n00", "n01", "n02", "n03", "n04", "n05", "n06", "n07", "n08", "n09", "n10", "n11",
            "n12", "n13", "n14", "n15", "n16", "n17", "n18", "n19",
        ];
        let mut m = MetricsRegistry::new();
        for round in 1..=100u64 {
            for name in NAMES {
                m.add(name, round);
            }
        }
        for name in NAMES {
            assert_eq!(m.counter(name), 5050);
        }
        assert_eq!(m.counter_families().len(), NAMES.len());
    }

    #[test]
    fn scope_suffixes() {
        assert_eq!(Scope::Global.suffix(), "");
        assert_eq!(Scope::Phase(2).suffix(), "/phase2");
        assert_eq!(Scope::Site(17).suffix(), "/site17");
    }
}
