//! Fault injection: perturbation events and the engine-side fault state.
//!
//! The paper's base model (§2) assumes faithful, loss-less links and
//! reliable sites; its §13 sketches dynamic networks and sporadic overload
//! without evaluating them. This module supplies the engine hooks that make
//! such scenarios simulable: timed [`FaultEvent`]s scheduled by the
//! experiment driver mutate the topology (link latency jitter, link
//! failure/recovery), crash and recover whole sites, and switch a
//! probabilistic message-loss plane on and off.
//!
//! Semantics (documented deviations from a physical system):
//!
//! * a *failed link* silently drops every direct send over it (counted as
//!   `sim_lost_link_down`); recovery restores the link with the delay it had
//!   when it failed unless the fault specifies a new one;
//! * *latency jitter* changes the delay charged to sends issued after the
//!   fault; messages already in flight keep their scheduled delivery time,
//!   so a delay drop lets later messages overtake earlier ones — per-link
//!   FIFO (paper §2) holds only between consecutive jitter events;
//! * a *down site* stops processing: deliveries, external injections and
//!   timers targeting it are discarded (counted); on recovery the site
//!   resumes with its pre-crash protocol state (crash with persistent
//!   memory);
//! * *message loss* applies an i.i.d. Bernoulli drop to every message handed
//!   to the engine while the loss probability is positive, drawn from a
//!   dedicated seeded RNG so protocol-level randomness is unaffected;
//! * *routed* sends ([`crate::engine::Context::send_routed`]) model a
//!   management-plane path as one delayed delivery: they are subject to
//!   message loss and down-site discard, and they are lost (counted as
//!   `sim_lost_unreachable`) when link failures have physically cut the
//!   sender off from the target — but a failed link on the *nominal* route
//!   does not lose them while an alternative path exists (the management
//!   plane is assumed to reroute).
//!
//! All fault processing is single-threaded inside the engine, so perturbed
//! runs stay bit-for-bit deterministic given the fault seed.

use rand::prelude::*;
use rand::rngs::StdRng;
use rtds_net::{LinkState, Network, SiteId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A timed perturbation applied by the engine between protocol events.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Sets the propagation delay of an existing link (latency jitter). If
    /// the link is currently failed, the remembered recovery delay is updated
    /// instead.
    SetLinkDelay {
        /// One endpoint.
        a: SiteId,
        /// Other endpoint.
        b: SiteId,
        /// New propagation delay.
        delay: f64,
    },
    /// Fails a link: it disappears from the topology and direct sends over
    /// it are lost until recovery.
    LinkDown {
        /// One endpoint.
        a: SiteId,
        /// Other endpoint.
        b: SiteId,
    },
    /// Recovers a previously failed link with its remembered delay.
    LinkUp {
        /// One endpoint.
        a: SiteId,
        /// Other endpoint.
        b: SiteId,
    },
    /// Crashes a site: it stops receiving messages and timers.
    SiteDown {
        /// The crashed site.
        site: SiteId,
    },
    /// Recovers a crashed site (its protocol state is retained).
    SiteUp {
        /// The recovered site.
        site: SiteId,
    },
    /// Sets the engine-wide message-loss probability (0 disables loss).
    SetMessageLoss {
        /// Per-message drop probability in `[0, 1]`.
        probability: f64,
    },
    /// Sets the bandwidth capacity of an existing link (brownout or
    /// capacity upgrade). In-flight flows re-solve their fair-share rates
    /// at the fault time; zero stalls them until a later change. If the
    /// link is currently failed, the remembered recovery bandwidth is
    /// updated instead.
    SetLinkBandwidth {
        /// One endpoint.
        a: SiteId,
        /// Other endpoint.
        b: SiteId,
        /// New bandwidth capacity (`f64::INFINITY` removes the constraint).
        bandwidth: f64,
    },
}

fn link_key(a: SiteId, b: SiteId) -> (usize, usize) {
    if a.0 <= b.0 {
        (a.0, b.0)
    } else {
        (b.0, a.0)
    }
}

/// The borrowed fault-plane state returned by [`FaultState::raw_parts`]:
/// `(failed_links, down_sites, loss probability, RNG state words)`. Each
/// failed link remembers the full [`LinkState`] to restore on recovery.
pub type RawFaultParts<'a> = (
    &'a BTreeMap<(usize, usize), LinkState>,
    &'a [bool],
    f64,
    [u64; 4],
);

/// Engine-side fault bookkeeping: which links are failed (with the state to
/// restore), which sites are down, and the message-loss plane.
#[derive(Debug)]
pub struct FaultState {
    failed_links: BTreeMap<(usize, usize), LinkState>,
    down_sites: Vec<bool>,
    loss_probability: f64,
    rng: StdRng,
}

impl FaultState {
    /// Creates a quiet fault plane for `site_count` sites, with the RNG for
    /// message-loss draws seeded by `seed`.
    pub fn new(site_count: usize, seed: u64) -> Self {
        FaultState {
            failed_links: BTreeMap::new(),
            down_sites: vec![false; site_count],
            loss_probability: 0.0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Reseeds the message-loss RNG (only meaningful before any loss draw).
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// The raw fault-plane state `(failed_links, down_sites, loss
    /// probability, RNG state words)` for checkpointing mid-run. The RNG
    /// words capture the message-loss stream position, so a restored run
    /// draws the exact continuation of the loss sequence.
    pub fn raw_parts(&self) -> RawFaultParts<'_> {
        (
            &self.failed_links,
            &self.down_sites,
            self.loss_probability,
            self.rng.state(),
        )
    }

    /// Rebuilds a fault plane from state captured by
    /// [`FaultState::raw_parts`].
    pub fn from_raw_parts(
        failed_links: BTreeMap<(usize, usize), LinkState>,
        down_sites: Vec<bool>,
        loss_probability: f64,
        rng_state: [u64; 4],
    ) -> Self {
        FaultState {
            failed_links,
            down_sites,
            loss_probability,
            rng: StdRng::from_state(rng_state),
        }
    }

    /// Returns `true` if the link between `a` and `b` is currently failed.
    pub fn link_is_failed(&self, a: SiteId, b: SiteId) -> bool {
        self.failed_links.contains_key(&link_key(a, b))
    }

    /// Returns `true` if any link is currently failed (guards the routed
    /// reachability check so unperturbed runs never pay for it).
    pub fn has_failed_links(&self) -> bool {
        !self.failed_links.is_empty()
    }

    /// Returns `true` if the site is currently down.
    pub fn site_is_down(&self, s: SiteId) -> bool {
        self.down_sites.get(s.0).copied().unwrap_or(false)
    }

    /// Current message-loss probability.
    pub fn loss_probability(&self) -> f64 {
        self.loss_probability
    }

    /// Sets the message-loss probability directly (clamped to `[0, 1]`).
    pub fn set_loss_probability(&mut self, p: f64) {
        self.loss_probability = if p.is_finite() {
            p.clamp(0.0, 1.0)
        } else {
            0.0
        };
    }

    /// Decides whether the next message is lost. Draws from the RNG only
    /// while loss is active, so a zero-probability plane leaves the stream —
    /// and hence the run — untouched.
    pub fn roll_message_loss(&mut self) -> bool {
        self.loss_probability > 0.0 && self.rng.random_bool(self.loss_probability)
    }

    /// Applies a fault to the topology and to this state. Faults referring
    /// to links or sites that do not exist (or are already in the target
    /// state) are ignored — perturbation plans are generated against the
    /// initial topology and may race with each other.
    pub fn apply(&mut self, fault: FaultEvent, network: &mut Network) {
        match fault {
            FaultEvent::SetLinkDelay { a, b, delay } => {
                if !(delay.is_finite() && delay >= 0.0) {
                    return;
                }
                if let Some(remembered) = self.failed_links.get_mut(&link_key(a, b)) {
                    remembered.delay = delay;
                } else {
                    let _ = network.set_link_delay(a, b, delay);
                }
            }
            FaultEvent::SetLinkBandwidth { a, b, bandwidth } => {
                if bandwidth.is_nan() || bandwidth < 0.0 {
                    return;
                }
                if let Some(remembered) = self.failed_links.get_mut(&link_key(a, b)) {
                    remembered.bandwidth = bandwidth;
                } else {
                    let _ = network.set_link_bandwidth(a, b, bandwidth);
                }
            }
            FaultEvent::LinkDown { a, b } => {
                if let Some(state) = network.remove_link(a, b) {
                    self.failed_links.insert(link_key(a, b), state);
                }
            }
            FaultEvent::LinkUp { a, b } => {
                if let Some(state) = self.failed_links.remove(&link_key(a, b)) {
                    let _ = network.restore_link(a, b, state);
                }
            }
            FaultEvent::SiteDown { site } => {
                if let Some(flag) = self.down_sites.get_mut(site.0) {
                    *flag = true;
                }
            }
            FaultEvent::SiteUp { site } => {
                if let Some(flag) = self.down_sites.get_mut(site.0) {
                    *flag = false;
                }
            }
            FaultEvent::SetMessageLoss { probability } => {
                self.set_loss_probability(probability);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtds_net::generators::{line, DelayDistribution};

    #[test]
    fn link_failure_and_recovery_round_trip() {
        let mut net = line(3, DelayDistribution::Constant(2.0), 0);
        let mut faults = FaultState::new(3, 0);
        faults.apply(
            FaultEvent::LinkDown {
                a: SiteId(1),
                b: SiteId(0),
            },
            &mut net,
        );
        assert!(faults.link_is_failed(SiteId(0), SiteId(1)));
        assert!(!net.has_link(SiteId(0), SiteId(1)));
        // Jitter while failed updates the remembered delay.
        faults.apply(
            FaultEvent::SetLinkDelay {
                a: SiteId(0),
                b: SiteId(1),
                delay: 5.0,
            },
            &mut net,
        );
        faults.apply(
            FaultEvent::LinkUp {
                a: SiteId(0),
                b: SiteId(1),
            },
            &mut net,
        );
        assert!(!faults.link_is_failed(SiteId(0), SiteId(1)));
        assert_eq!(net.link_delay(SiteId(0), SiteId(1)), Some(5.0));
        // Recovering an up link is a no-op.
        faults.apply(
            FaultEvent::LinkUp {
                a: SiteId(0),
                b: SiteId(1),
            },
            &mut net,
        );
        assert_eq!(net.link_count(), 2);
    }

    #[test]
    fn jitter_mutates_live_links_and_ignores_garbage() {
        let mut net = line(3, DelayDistribution::Constant(2.0), 0);
        let mut faults = FaultState::new(3, 0);
        faults.apply(
            FaultEvent::SetLinkDelay {
                a: SiteId(0),
                b: SiteId(1),
                delay: 7.5,
            },
            &mut net,
        );
        assert_eq!(net.link_delay(SiteId(0), SiteId(1)), Some(7.5));
        // Negative delay, missing link, unknown site: all ignored.
        faults.apply(
            FaultEvent::SetLinkDelay {
                a: SiteId(0),
                b: SiteId(1),
                delay: -1.0,
            },
            &mut net,
        );
        assert_eq!(net.link_delay(SiteId(0), SiteId(1)), Some(7.5));
        faults.apply(
            FaultEvent::SetLinkDelay {
                a: SiteId(0),
                b: SiteId(2),
                delay: 1.0,
            },
            &mut net,
        );
        faults.apply(
            FaultEvent::LinkDown {
                a: SiteId(0),
                b: SiteId(2),
            },
            &mut net,
        );
        assert_eq!(net.link_count(), 2);
    }

    #[test]
    fn bandwidth_faults_hit_live_links_and_failed_link_memory() {
        let mut net = line(3, DelayDistribution::Constant(2.0), 0);
        let mut faults = FaultState::new(3, 0);
        faults.apply(
            FaultEvent::SetLinkBandwidth {
                a: SiteId(0),
                b: SiteId(1),
                bandwidth: 4.0,
            },
            &mut net,
        );
        assert_eq!(net.link_bandwidth(SiteId(0), SiteId(1)), Some(4.0));
        // Invalid bandwidth and missing links are ignored.
        faults.apply(
            FaultEvent::SetLinkBandwidth {
                a: SiteId(0),
                b: SiteId(1),
                bandwidth: -1.0,
            },
            &mut net,
        );
        assert_eq!(net.link_bandwidth(SiteId(0), SiteId(1)), Some(4.0));
        faults.apply(
            FaultEvent::SetLinkBandwidth {
                a: SiteId(0),
                b: SiteId(2),
                bandwidth: 1.0,
            },
            &mut net,
        );
        // A brownout while failed updates the remembered recovery state.
        faults.apply(
            FaultEvent::LinkDown {
                a: SiteId(0),
                b: SiteId(1),
            },
            &mut net,
        );
        faults.apply(
            FaultEvent::SetLinkBandwidth {
                a: SiteId(0),
                b: SiteId(1),
                bandwidth: 0.5,
            },
            &mut net,
        );
        faults.apply(
            FaultEvent::LinkUp {
                a: SiteId(0),
                b: SiteId(1),
            },
            &mut net,
        );
        assert_eq!(net.link_delay(SiteId(0), SiteId(1)), Some(2.0));
        assert_eq!(net.link_bandwidth(SiteId(0), SiteId(1)), Some(0.5));
    }

    #[test]
    fn site_crash_and_recovery() {
        let mut net = line(2, DelayDistribution::Constant(1.0), 0);
        let mut faults = FaultState::new(2, 0);
        assert!(!faults.site_is_down(SiteId(1)));
        faults.apply(FaultEvent::SiteDown { site: SiteId(1) }, &mut net);
        assert!(faults.site_is_down(SiteId(1)));
        faults.apply(FaultEvent::SiteUp { site: SiteId(1) }, &mut net);
        assert!(!faults.site_is_down(SiteId(1)));
        // Out-of-range sites are ignored.
        faults.apply(FaultEvent::SiteDown { site: SiteId(9) }, &mut net);
        assert!(!faults.site_is_down(SiteId(9)));
    }

    #[test]
    fn recovery_before_failure_is_a_noop() {
        // LinkUp without a prior LinkDown must not invent a link or corrupt
        // the remembered-delay table used by later recoveries.
        let mut net = line(3, DelayDistribution::Constant(2.0), 0);
        let mut faults = FaultState::new(3, 0);
        faults.apply(
            FaultEvent::LinkUp {
                a: SiteId(0),
                b: SiteId(1),
            },
            &mut net,
        );
        assert_eq!(net.link_count(), 2);
        assert_eq!(net.link_delay(SiteId(0), SiteId(1)), Some(2.0));
        faults.apply(
            FaultEvent::LinkDown {
                a: SiteId(0),
                b: SiteId(1),
            },
            &mut net,
        );
        assert!(faults.link_is_failed(SiteId(0), SiteId(1)));
    }

    #[test]
    fn duplicate_failures_keep_the_original_recovery_delay() {
        let mut net = line(3, DelayDistribution::Constant(2.0), 0);
        let mut faults = FaultState::new(3, 0);
        let down = FaultEvent::LinkDown {
            a: SiteId(0),
            b: SiteId(1),
        };
        faults.apply(down, &mut net);
        // Jitter the *live* remainder of the network, then fail the same
        // link again: the second failure sees no link and must not clobber
        // the remembered delay of 2.0.
        faults.apply(down, &mut net);
        faults.apply(
            FaultEvent::LinkUp {
                a: SiteId(0),
                b: SiteId(1),
            },
            &mut net,
        );
        assert_eq!(net.link_delay(SiteId(0), SiteId(1)), Some(2.0));
        assert!(!faults.link_is_failed(SiteId(0), SiteId(1)));
    }

    #[test]
    fn duplicate_site_crashes_collapse_to_one_state_flag() {
        let mut net = line(2, DelayDistribution::Constant(1.0), 0);
        let mut faults = FaultState::new(2, 0);
        faults.apply(FaultEvent::SiteDown { site: SiteId(0) }, &mut net);
        faults.apply(FaultEvent::SiteDown { site: SiteId(0) }, &mut net);
        assert!(faults.site_is_down(SiteId(0)));
        faults.apply(FaultEvent::SiteUp { site: SiteId(0) }, &mut net);
        assert!(!faults.site_is_down(SiteId(0)));
    }

    #[test]
    fn message_loss_probability_and_rolls() {
        let mut faults = FaultState::new(1, 42);
        assert_eq!(faults.loss_probability(), 0.0);
        // Zero probability never draws (and never loses).
        for _ in 0..100 {
            assert!(!faults.roll_message_loss());
        }
        faults.set_loss_probability(1.0);
        assert!(faults.roll_message_loss());
        faults.set_loss_probability(2.0);
        assert_eq!(faults.loss_probability(), 1.0);
        faults.set_loss_probability(f64::NAN);
        assert_eq!(faults.loss_probability(), 0.0);
        // Around half the rolls at p = 0.5.
        faults.set_loss_probability(0.5);
        let lost = (0..1000).filter(|_| faults.roll_message_loss()).count();
        assert!((300..700).contains(&lost), "lost {lost} of 1000");
    }
}
