//! End-to-end determinism of the telemetry subsystem: the metrics sections
//! of every report must be byte-identical across runs and across sweep
//! thread counts, and must round-trip through the deterministic JSON layer.

use rtds::scenarios::{find_scenario, run_cell, run_sweep, SweepConfig};
use rtds::sim::metrics_json::metrics_to_json;
use rtds::sim::Json;

/// The sweep used throughout: two scenarios (one batch, one streaming) so
/// both execution paths contribute histograms and gauges.
fn scenario_pair() -> Vec<rtds::scenarios::Scenario> {
    vec![
        find_scenario("paper-baseline").unwrap(),
        find_scenario("diurnal-wave").unwrap(),
    ]
}

#[test]
fn sweep_metric_summaries_are_identical_across_thread_counts() {
    let scenarios = scenario_pair();
    let reports: Vec<_> = [1usize, 2, 4]
        .iter()
        .map(|&threads| run_sweep(&scenarios, &SweepConfig::new(5, 4, threads)))
        .collect();
    // The whole reports (cells, per-scenario merged registries, JSON
    // renderings) agree for 1, 2 and 4 worker threads.
    assert_eq!(reports[0], reports[1]);
    assert_eq!(reports[0], reports[2]);
    let json = reports[0].to_json();
    assert_eq!(json, reports[1].to_json());
    assert_eq!(json, reports[2].to_json());
    // And the summaries are non-trivial: latency histograms actually fired.
    for summary in &reports[0].scenarios {
        let latency = summary.metrics.histogram("accept_latency");
        assert!(
            latency.count() > 0,
            "{}: no accept_latency samples",
            summary.name
        );
        let s = latency.summary();
        assert!(s.min <= s.p50 && s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
    }
    // The streaming scenario carries the workload-layer instruments.
    let streaming = reports[0].scenario("diurnal-wave").unwrap();
    assert!(streaming.metrics.histogram("interarrival").count() > 0);
    assert!(streaming.metrics.gauge("inflight_jobs").is_some());
}

#[test]
fn cell_metrics_are_reproducible_and_laxity_aware() {
    let scenario = find_scenario("tight-laxity-storm").unwrap();
    let a = run_cell(&scenario, 3);
    let b = run_cell(&scenario, 3);
    assert_eq!(a.metrics, b.metrics);
    // Laxity slack at acceptance is strictly positive: a job accepted after
    // its deadline would be a protocol bug.
    let laxity = a.metrics.histogram("accept_laxity");
    if laxity.count() > 0 {
        assert!(laxity.min() > 0.0, "accepted a job with no slack left");
    }
    // Completion slack of on-time jobs is non-negative (no deadline misses).
    assert_eq!(a.deadline_misses, 0);
    let slack = a.metrics.histogram("completion_slack");
    if slack.count() > 0 {
        assert!(
            slack.min() >= -1e-9,
            "on-time completions with negative slack"
        );
    }
}

#[test]
fn metrics_sections_round_trip_through_json_parse() {
    let scenario = find_scenario("paper-baseline").unwrap();
    let cell = run_cell(&scenario, 9);
    for detail in [false, true] {
        let section = metrics_to_json(&cell.metrics, detail);
        let rendered = section.render();
        let reparsed = Json::parse(&rendered).expect("metrics JSON parses");
        assert_eq!(reparsed, section, "detail = {detail}");
        // Shortest-round-trip floats make render → parse → render a
        // byte fixpoint — the same invariant the trace layer relies on.
        assert_eq!(reparsed.render(), rendered, "detail = {detail}");
        // Structured access into the reparsed section works.
        let histograms = reparsed.get("histograms").expect("histograms section");
        let latency = histograms.get("accept_latency").expect("accept_latency");
        assert!(latency.get("count").and_then(Json::as_u64).unwrap() > 0);
        let p50 = latency.get("p50").and_then(Json::as_f64).unwrap();
        let p99 = latency.get("p99").and_then(Json::as_f64).unwrap();
        assert!(p50 <= p99);
    }
    // The full sweep report (which embeds the metrics sections) also
    // round-trips byte-for-byte.
    let report = run_sweep(&scenario_pair(), &SweepConfig::new(1, 2, 2));
    let rendered = report.to_json();
    let reparsed = Json::parse(&rendered).expect("sweep JSON parses");
    assert_eq!(reparsed.render(), rendered);
}
