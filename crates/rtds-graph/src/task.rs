//! Task identities and per-task attributes.
//!
//! A task is the atomic unit of work in the RTDS model. Its only mandatory
//! attribute is its *Computational Complexity* `c(t)`: the execution time of
//! the task on an idle unit-speed site. On a site whose surplus is `I`, the
//! Mapper estimates the execution duration as `c(t) / I` (paper §12); on a
//! uniform machine of speed `s` the duration is `c(t) / s` (paper §13).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a task inside one job.
///
/// Task ids are dense indices (`0..n`) into the owning [`TaskGraph`](crate::TaskGraph)
/// (crate::TaskGraph); they are *not* globally unique across jobs. The paper's
/// worked example numbers tasks from 1; the crate uses 0-based ids internally
/// and the paper-facing binaries print them 1-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub usize);

impl TaskId {
    /// Raw index of the task.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }

    /// One-based label used when printing paper-style exhibits.
    #[inline]
    pub fn paper_label(self) -> usize {
        self.0 + 1
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<usize> for TaskId {
    fn from(v: usize) -> Self {
        TaskId(v)
    }
}

/// A task of a job: a name plus its computational complexity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Identifier within the owning graph.
    pub id: TaskId,
    /// Computational complexity `c(t)` (execution time on an idle unit-speed
    /// site). Non-negative by construction.
    pub cost: f64,
    /// Optional human-readable label (used by examples and traces).
    pub label: Option<String>,
}

impl Task {
    /// Creates a task with the given id and computational complexity.
    ///
    /// # Panics
    /// Panics if `cost` is negative or not finite — the paper assumes all
    /// weights are non-negative (§2).
    pub fn new(id: TaskId, cost: f64) -> Self {
        assert!(
            cost.is_finite() && cost >= 0.0,
            "task cost must be finite and non-negative, got {cost}"
        );
        Task {
            id,
            cost,
            label: None,
        }
    }

    /// Creates a task with a label.
    pub fn with_label(id: TaskId, cost: f64, label: impl Into<String>) -> Self {
        let mut t = Task::new(id, cost);
        t.label = Some(label.into());
        t
    }

    /// Execution duration of this task on a site with the given surplus
    /// (paper §12: duration = `c(t) / I`).
    ///
    /// # Panics
    /// Panics if `surplus` is not in `(0, 1]`.
    pub fn duration_with_surplus(&self, surplus: f64) -> f64 {
        assert!(
            surplus > 0.0 && surplus <= 1.0,
            "surplus must lie in (0, 1], got {surplus}"
        );
        self.cost / surplus
    }

    /// Execution duration on a uniform machine of relative speed `speed`
    /// (paper §13, related machines).
    pub fn duration_with_speed(&self, speed: f64) -> f64 {
        assert!(speed > 0.0, "machine speed must be positive, got {speed}");
        self.cost / speed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_id_display_and_labels() {
        let id = TaskId(4);
        assert_eq!(id.index(), 4);
        assert_eq!(id.paper_label(), 5);
        assert_eq!(format!("{id}"), "t4");
        assert_eq!(TaskId::from(7), TaskId(7));
    }

    #[test]
    fn task_construction_and_duration() {
        let t = Task::new(TaskId(0), 6.0);
        assert_eq!(t.cost, 6.0);
        assert!(t.label.is_none());
        // Paper example: c = 6 on a site with surplus 0.5 runs for 12 units.
        assert_eq!(t.duration_with_surplus(0.5), 12.0);
        assert_eq!(t.duration_with_surplus(1.0), 6.0);
        assert_eq!(t.duration_with_speed(2.0), 3.0);
    }

    #[test]
    fn task_with_label() {
        let t = Task::with_label(TaskId(1), 3.5, "fft-stage");
        assert_eq!(t.label.as_deref(), Some("fft-stage"));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_cost_rejected() {
        let _ = Task::new(TaskId(0), -1.0);
    }

    #[test]
    #[should_panic(expected = "surplus")]
    fn zero_surplus_rejected() {
        let t = Task::new(TaskId(0), 1.0);
        let _ = t.duration_with_surplus(0.0);
    }

    #[test]
    #[should_panic(expected = "surplus")]
    fn surplus_above_one_rejected() {
        let t = Task::new(TaskId(0), 1.0);
        let _ = t.duration_with_surplus(1.5);
    }
}
